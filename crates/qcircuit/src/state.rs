//! The statevector and its gate-application kernels.
//!
//! Qubit `q` corresponds to bit `q` of the basis index (little-endian):
//! `|b_{n−1} … b_1 b_0⟩` has amplitude index `Σ b_q 2^q`.

use qpinn_dual::{Cplx, Scalar};

/// A pure `n`-qubit state, generic over the scalar carried by its
/// amplitudes.
#[derive(Clone, Debug)]
pub struct State<S> {
    n_qubits: usize,
    amps: Vec<Cplx<S>>,
}

impl<S: Scalar> State<S> {
    /// The computational basis state `|0…0⟩`.
    pub fn zero(n_qubits: usize) -> Self {
        assert!((1..=24).contains(&n_qubits), "unreasonable qubit count");
        let mut amps = vec![Cplx::zero(); 1 << n_qubits];
        amps[0] = Cplx::one();
        State { n_qubits, amps }
    }

    /// Number of qubits.
    pub fn n_qubits(&self) -> usize {
        self.n_qubits
    }

    /// Amplitudes in basis order.
    pub fn amplitudes(&self) -> &[Cplx<S>] {
        &self.amps
    }

    /// Total norm `⟨ψ|ψ⟩`.
    pub fn norm_sqr(&self) -> S {
        let mut acc = S::zero();
        for a in &self.amps {
            acc += a.norm_sqr();
        }
        acc
    }

    /// Apply a single-qubit gate `[[g00, g01], [g10, g11]]` to `target`.
    ///
    /// # Panics
    /// Panics for an out-of-range target.
    pub fn apply_1q(&mut self, target: usize, g: &[[Cplx<S>; 2]; 2]) {
        assert!(target < self.n_qubits, "target {target} out of range");
        let bit = 1usize << target;
        let n = self.amps.len();
        let mut i0 = 0usize;
        while i0 < n {
            if i0 & bit == 0 {
                let i1 = i0 | bit;
                let a0 = self.amps[i0];
                let a1 = self.amps[i1];
                self.amps[i0] = g[0][0] * a0 + g[0][1] * a1;
                self.amps[i1] = g[1][0] * a0 + g[1][1] * a1;
            }
            i0 += 1;
        }
    }

    /// Apply a single-qubit gate to `target`, controlled on `control`.
    ///
    /// # Panics
    /// Panics for out-of-range or equal qubits.
    pub fn apply_controlled_1q(&mut self, control: usize, target: usize, g: &[[Cplx<S>; 2]; 2]) {
        assert!(control < self.n_qubits && target < self.n_qubits);
        assert_ne!(control, target, "control = target");
        let cbit = 1usize << control;
        let tbit = 1usize << target;
        let n = self.amps.len();
        for i0 in 0..n {
            if i0 & cbit != 0 && i0 & tbit == 0 {
                let i1 = i0 | tbit;
                let a0 = self.amps[i0];
                let a1 = self.amps[i1];
                self.amps[i0] = g[0][0] * a0 + g[0][1] * a1;
                self.amps[i1] = g[1][0] * a0 + g[1][1] * a1;
            }
        }
    }

    /// CNOT with the given control and target.
    pub fn apply_cnot(&mut self, control: usize, target: usize) {
        assert!(control < self.n_qubits && target < self.n_qubits);
        assert_ne!(control, target, "control = target");
        let cbit = 1usize << control;
        let tbit = 1usize << target;
        for i in 0..self.amps.len() {
            if i & cbit != 0 && i & tbit == 0 {
                let j = i | tbit;
                self.amps.swap(i, j);
            }
        }
    }

    /// Expectation value `⟨Z_q⟩ = Σ (−1)^{bit q} |ψ_i|²`.
    pub fn expectation_z(&self, q: usize) -> S {
        assert!(q < self.n_qubits);
        let bit = 1usize << q;
        let mut acc = S::zero();
        for (i, a) in self.amps.iter().enumerate() {
            let p = a.norm_sqr();
            if i & bit == 0 {
                acc += p;
            } else {
                acc -= p;
            }
        }
        acc
    }

    /// All per-qubit Z expectations.
    pub fn all_expectations_z(&self) -> Vec<S> {
        (0..self.n_qubits).map(|q| self.expectation_z(q)).collect()
    }
}

impl State<f64> {
    /// Measurement probabilities in basis order.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|a| a.norm_sqr()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use qpinn_dual::Complex64;

    type St = State<f64>;

    #[test]
    fn zero_state_is_normalized() {
        let s = St::zero(3);
        assert_eq!(s.amplitudes().len(), 8);
        assert!((s.norm_sqr() - 1.0).abs() < 1e-15);
        assert_eq!(s.amplitudes()[0], Complex64::one());
    }

    #[test]
    fn x_gate_flips() {
        // RX(π) = −i X up to phase: |0⟩ → −i|1⟩.
        let mut s = St::zero(1);
        s.apply_1q(0, &gates::rx(std::f64::consts::PI));
        assert!(s.amplitudes()[0].abs() < 1e-12);
        assert!((s.amplitudes()[1].abs() - 1.0).abs() < 1e-12);
        assert!((s.expectation_z(0) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn hadamard_gives_equal_superposition() {
        let mut s = St::zero(2);
        s.apply_1q(0, &gates::hadamard());
        s.apply_1q(1, &gates::hadamard());
        for a in s.amplitudes() {
            assert!((a.re - 0.5).abs() < 1e-12 && a.im.abs() < 1e-12);
        }
        assert!(s.expectation_z(0).abs() < 1e-12);
    }

    #[test]
    fn bell_state_via_h_cnot() {
        let mut s = St::zero(2);
        s.apply_1q(0, &gates::hadamard());
        s.apply_cnot(0, 1);
        let p = s.probabilities();
        assert!((p[0] - 0.5).abs() < 1e-12); // |00⟩
        assert!((p[3] - 0.5).abs() < 1e-12); // |11⟩
        assert!(p[1].abs() < 1e-15 && p[2].abs() < 1e-15);
    }

    #[test]
    fn rx_rotation_expectation_is_cos_theta() {
        for &theta in &[0.0, 0.4, 1.1, 2.7] {
            let mut s = St::zero(1);
            s.apply_1q(0, &gates::rx(theta));
            assert!(
                (s.expectation_z(0) - theta.cos()).abs() < 1e-12,
                "θ = {theta}"
            );
        }
    }

    #[test]
    fn controlled_gate_ignores_zero_control() {
        let mut s = St::zero(2);
        s.apply_controlled_1q(0, 1, &gates::rx(1.3));
        // control qubit 0 is |0⟩ → nothing happens
        assert!((s.amplitudes()[0].re - 1.0).abs() < 1e-15);
    }

    #[test]
    fn crz_applies_phase_only_on_11() {
        let mut s = St::zero(2);
        s.apply_1q(0, &gates::hadamard());
        s.apply_1q(1, &gates::hadamard());
        s.apply_controlled_1q(0, 1, &gates::rz(1.0));
        // |11⟩ picks up e^{+i/2}, |01⟩… wait: rz applies phases to target
        // basis; on the controlled subspace (control=1): |10⟩ (target 1 = 0)
        // gets e^{-i/2}, |11⟩ gets e^{+i/2}. Norm unchanged everywhere.
        let p = s.probabilities();
        for v in p {
            assert!((v - 0.25).abs() < 1e-12);
        }
        assert!((s.amplitudes()[3].arg() - 0.5).abs() < 1e-12);
        assert!((s.amplitudes()[1].arg() - (-0.5)).abs() < 1e-12);
    }

    #[test]
    fn gates_preserve_norm() {
        let mut s = St::zero(3);
        s.apply_1q(0, &gates::rx(0.7));
        s.apply_1q(1, &gates::ry(1.2));
        s.apply_1q(2, &gates::rz(-0.5));
        s.apply_cnot(0, 2);
        s.apply_controlled_1q(2, 1, &gates::rz(0.9));
        assert!((s.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn little_endian_indexing() {
        // Flip qubit 1 of |000⟩ → index 2.
        let mut s = St::zero(3);
        s.apply_1q(1, &gates::rx(std::f64::consts::PI));
        let p = s.probabilities();
        assert!((p[2] - 1.0).abs() < 1e-12);
    }
}
