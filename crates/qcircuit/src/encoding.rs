//! Angle embedding of classical activations, with the five input scalings
//! ablated in the QPINN literature.
//!
//! The preceding classical layer emits tanh-bounded activations
//! `a ∈ [−1, 1]`; a scaling maps them to rotation angles before the `RX`
//! embedding. With Pauli-Z readout `⟨Z⟩ = cos θ`, `acos` makes the
//! single-qubit map the identity and `asin` a sign flip — the remaining
//! scalings trade range for distinguishability on the Bloch sphere.

use crate::gates;
use crate::state::State;
use qpinn_dual::Scalar;

/// The input-angle scaling applied before `RX` embedding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InputScaling {
    /// `θ = a` (range `[−1, 1]`).
    None,
    /// `θ = πa` (range `[−π, π]`).
    Pi,
    /// `θ = (a + 1)π/2` (range `[0, π]`).
    Bias,
    /// `θ = asin(a) + π/2` (range `[0, π]`, uniformizes `⟨Z⟩`).
    Asin,
    /// `θ = acos(a)` (range `[0, π]`, makes `⟨Z⟩ = a`).
    Acos,
}

impl InputScaling {
    /// All scalings, for ablation sweeps.
    pub fn all() -> [InputScaling; 5] {
        [
            InputScaling::None,
            InputScaling::Pi,
            InputScaling::Bias,
            InputScaling::Asin,
            InputScaling::Acos,
        ]
    }

    /// Report name.
    pub fn name(&self) -> &'static str {
        match self {
            InputScaling::None => "none",
            InputScaling::Pi => "pi",
            InputScaling::Bias => "bias",
            InputScaling::Asin => "asin",
            InputScaling::Acos => "acos",
        }
    }

    /// Scale one activation (plain `f64`; inputs are clamped to `[−1, 1]`
    /// so the inverse trig branches stay real).
    pub fn angle(&self, a: f64) -> f64 {
        let a = a.clamp(-1.0, 1.0);
        match self {
            InputScaling::None => a,
            InputScaling::Pi => a * std::f64::consts::PI,
            InputScaling::Bias => (a + 1.0) * 0.5 * std::f64::consts::PI,
            InputScaling::Asin => a.asin() + std::f64::consts::FRAC_PI_2,
            InputScaling::Acos => a.acos(),
        }
    }

    /// Derivative `dθ/da` (for chaining gradients through the scaling).
    pub fn dangle(&self, a: f64) -> f64 {
        let a = a.clamp(-1.0, 1.0);
        match self {
            InputScaling::None => 1.0,
            InputScaling::Pi => std::f64::consts::PI,
            InputScaling::Bias => 0.5 * std::f64::consts::PI,
            InputScaling::Asin => 1.0 / (1.0 - a * a).max(1e-12).sqrt(),
            InputScaling::Acos => -1.0 / (1.0 - a * a).max(1e-12).sqrt(),
        }
    }

    /// Second derivative `d²θ/da²`.
    pub fn ddangle(&self, a: f64) -> f64 {
        let a = a.clamp(-1.0, 1.0);
        match self {
            InputScaling::None | InputScaling::Pi | InputScaling::Bias => 0.0,
            InputScaling::Asin => a / (1.0 - a * a).max(1e-12).powf(1.5),
            InputScaling::Acos => -a / (1.0 - a * a).max(1e-12).powf(1.5),
        }
    }
}

/// Angle-embed pre-scaled angles into a fresh state: `⊗_q RX(θ_q)|0⟩`.
pub fn angle_embed<S: Scalar>(angles: &[S]) -> State<S> {
    let mut s = State::zero(angles.len());
    for (q, &theta) in angles.iter().enumerate() {
        s.apply_1q(q, &gates::rx(theta));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges() {
        for s in InputScaling::all() {
            for &a in &[-1.0, -0.5, 0.0, 0.5, 1.0] {
                let t = s.angle(a);
                match s {
                    InputScaling::None => assert!((-1.0..=1.0).contains(&t)),
                    InputScaling::Pi => {
                        assert!((-std::f64::consts::PI..=std::f64::consts::PI).contains(&t))
                    }
                    _ => assert!((0.0..=std::f64::consts::PI + 1e-12).contains(&t)),
                }
            }
        }
    }

    #[test]
    fn acos_makes_readout_identity() {
        // ⟨Z⟩ after RX(acos a) is exactly a.
        for &a in &[-0.9, -0.3, 0.0, 0.4, 0.95] {
            let s = angle_embed(&[InputScaling::Acos.angle(a)]);
            assert!((s.expectation_z(0) - a).abs() < 1e-12, "a={a}");
        }
    }

    #[test]
    fn asin_makes_readout_sign_flip() {
        // cos(asin a + π/2) = −a.
        for &a in &[-0.8, 0.1, 0.7] {
            let s = angle_embed(&[InputScaling::Asin.angle(a)]);
            assert!((s.expectation_z(0) + a).abs() < 1e-12, "a={a}");
        }
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let h = 1e-6;
        for s in InputScaling::all() {
            for &a in &[-0.7, -0.2, 0.3, 0.8] {
                let fd = (s.angle(a + h) - s.angle(a - h)) / (2.0 * h);
                assert!(
                    (s.dangle(a) - fd).abs() < 1e-5 * fd.abs().max(1.0),
                    "{} at {a}",
                    s.name()
                );
                let fd2 = (s.angle(a + h) - 2.0 * s.angle(a) + s.angle(a - h)) / (h * h);
                assert!(
                    (s.ddangle(a) - fd2).abs() < 2e-3 * fd2.abs().max(1.0),
                    "{} at {a}: {} vs {fd2}",
                    s.name(),
                    s.ddangle(a)
                );
            }
        }
    }

    #[test]
    fn embedding_is_product_state() {
        let s = angle_embed(&[0.3, 1.1, 2.0]);
        // per-qubit ⟨Z⟩ are independent cosines
        for (q, &t) in [0.3, 1.1, 2.0].iter().enumerate() {
            assert!((s.expectation_z(q) - t.cos()).abs() < 1e-12);
        }
    }

    #[test]
    fn out_of_range_inputs_are_clamped() {
        assert_eq!(InputScaling::Acos.angle(1.5), 0.0);
        assert!((InputScaling::Acos.angle(-2.0) - std::f64::consts::PI).abs() < 1e-15);
    }
}
