//! Finite-shot measurement: sampling bitstrings from the statevector and
//! estimating expectations from counts.
//!
//! The training pipeline uses analytic expectations (exact statevector
//! values, "infinite shots"); this module provides the finite-shot
//! estimators a hardware deployment would rely on, so the shot-noise
//! penalty can be quantified.

use crate::state::State;
use rand::rngs::StdRng;
use rand::Rng;

/// Draw `shots` computational-basis samples (basis indices) from the
/// measurement distribution of `state`.
pub fn sample_bitstrings(state: &State<f64>, shots: usize, rng: &mut StdRng) -> Vec<usize> {
    let probs = state.probabilities();
    // cumulative distribution for inverse-transform sampling
    let mut cdf = Vec::with_capacity(probs.len());
    let mut acc = 0.0;
    for p in &probs {
        acc += p;
        cdf.push(acc);
    }
    let total = acc.max(f64::MIN_POSITIVE);
    (0..shots)
        .map(|_| {
            let u: f64 = rng.gen_range(0.0..total);
            match cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
                Ok(i) | Err(i) => i.min(probs.len() - 1),
            }
        })
        .collect()
}

/// Estimate `⟨Z_q⟩` for every qubit from `shots` samples.
pub fn estimate_z_expectations(
    state: &State<f64>,
    shots: usize,
    rng: &mut StdRng,
) -> Vec<f64> {
    let n = state.n_qubits();
    let samples = sample_bitstrings(state, shots, rng);
    let mut sums = vec![0.0f64; n];
    for s in &samples {
        for (q, sum) in sums.iter_mut().enumerate() {
            if s & (1 << q) == 0 {
                *sum += 1.0;
            } else {
                *sum -= 1.0;
            }
        }
    }
    sums.iter().map(|s| s / shots as f64).collect()
}

/// The standard error of a finite-shot `⟨Z⟩` estimate:
/// `√((1 − ⟨Z⟩²)/shots)`.
pub fn z_standard_error(expectation: f64, shots: usize) -> f64 {
    ((1.0 - expectation * expectation).max(0.0) / shots as f64).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gates;
    use rand::SeedableRng;

    #[test]
    fn deterministic_state_always_samples_same_bitstring() {
        let mut s: State<f64> = State::zero(3);
        s.apply_1q(1, &gates::rx(std::f64::consts::PI)); // |010⟩ (index 2)
        let mut rng = StdRng::seed_from_u64(0);
        let samples = sample_bitstrings(&s, 100, &mut rng);
        assert!(samples.iter().all(|&b| b == 2));
    }

    #[test]
    fn shot_estimates_converge_to_analytic_expectations() {
        let theta = 1.1;
        let mut s: State<f64> = State::zero(2);
        s.apply_1q(0, &gates::rx(theta));
        s.apply_1q(1, &gates::hadamard());
        let mut rng = StdRng::seed_from_u64(1);
        let est = estimate_z_expectations(&s, 100_000, &mut rng);
        let exact = s.all_expectations_z();
        for (q, (e, x)) in est.iter().zip(&exact).enumerate() {
            let se = z_standard_error(*x, 100_000);
            assert!(
                (e - x).abs() < 5.0 * se.max(1e-3),
                "qubit {q}: {e} vs {x} (se {se})"
            );
        }
    }

    #[test]
    fn bell_state_samples_are_perfectly_correlated() {
        let mut s: State<f64> = State::zero(2);
        s.apply_1q(0, &gates::hadamard());
        s.apply_cnot(0, 1);
        let mut rng = StdRng::seed_from_u64(2);
        let samples = sample_bitstrings(&s, 2000, &mut rng);
        let mut zeros = 0usize;
        for b in samples {
            assert!(b == 0 || b == 3, "non-correlated outcome {b}");
            if b == 0 {
                zeros += 1;
            }
        }
        // roughly 50/50
        assert!((zeros as f64 / 2000.0 - 0.5).abs() < 0.05);
    }

    #[test]
    fn standard_error_shrinks_with_shots() {
        assert!(z_standard_error(0.0, 100) > z_standard_error(0.0, 10_000));
        assert_eq!(z_standard_error(1.0, 100), 0.0);
        assert!((z_standard_error(0.0, 10_000) - 0.01).abs() < 1e-12);
    }

    #[test]
    fn sampling_is_reproducible_with_seed() {
        let mut s: State<f64> = State::zero(2);
        s.apply_1q(0, &gates::hadamard());
        let a = sample_bitstrings(&s, 50, &mut StdRng::seed_from_u64(7));
        let b = sample_bitstrings(&s, 50, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }
}
