//! Atomic metric primitives: monotonic counters, last-value gauges, and
//! power-of-two-bucketed histograms.
//!
//! All three are lock-free and safe to update from any thread; updates use
//! `Ordering::Relaxed` because metrics are statistical — readers only ever
//! see a snapshot, never synchronize through a metric.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero (tests and per-run snapshots).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins gauge holding an `f64` (stored as raw bits).
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Gauge::new()
    }
}

impl Gauge {
    /// A gauge starting at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Set the gauge.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Number of histogram buckets: bucket `i` counts values `v` with
/// `floor(log2(v)) == i` (bucket 0 additionally holds `v == 0`), so the
/// full `u64` range is covered.
pub const HIST_BUCKETS: usize = 64;

/// A lock-free histogram over `u64` samples (typically nanoseconds) with
/// power-of-two buckets plus exact count/sum/max.
///
/// Power-of-two buckets trade resolution for a fixed footprint and a
/// wait-free `record`: good enough to tell a 2 µs phase from a 2 ms one,
/// which is what phase accounting needs.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; HIST_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index a value falls into.
    #[inline]
    fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            63 - v.leading_zeros() as usize
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record a non-negative `f64` sample scaled to nano-units (×1e9),
    /// so magnitudes down to 1e-9 land in distinct log2 buckets — the
    /// scale gradient norms live at. Negative, NaN, and sub-nano values
    /// record as 0; values past `u64::MAX / 1e9` saturate at the top
    /// bucket.
    #[inline]
    pub fn record_f64(&self, v: f64) {
        let scaled = v * 1e9;
        let sample = if scaled.is_finite() && scaled > 0.0 {
            if scaled >= u64::MAX as f64 {
                u64::MAX
            } else {
                scaled as u64
            }
        } else {
            0
        };
        self.record(sample);
    }

    /// Materialize the current contents.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }

    /// Clear all buckets and totals.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Clone, Debug, PartialEq)]
pub struct HistogramSnapshot {
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest recorded sample.
    pub max: u64,
    /// Per-bucket counts (see [`HIST_BUCKETS`]).
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`): the upper bound of the
    /// bucket containing the `q`-th sample, so the estimate is within a
    /// factor of two of the true value.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Upper edge of bucket i, capped at max for the last one.
                return if i >= 63 {
                    self.max
                } else {
                    (2u64 << i).min(self.max.max(1))
                };
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_and_resets() {
        let c = Counter::new();
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn gauge_round_trips_f64() {
        let g = Gauge::new();
        g.set(-1.5e-7);
        assert_eq!(g.get(), -1.5e-7);
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 1000, 1024] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 7);
        assert_eq!(s.sum, 2034);
        assert_eq!(s.max, 1024);
        assert_eq!(s.buckets[0], 2); // 0 and 1
        assert_eq!(s.buckets[1], 2); // 2 and 3
        assert_eq!(s.buckets[2], 1); // 4
        assert_eq!(s.buckets[9], 1); // 1000 (512..1024)
        assert_eq!(s.buckets[10], 1); // 1024
    }

    #[test]
    fn histogram_quantiles_bracket_the_data() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(100);
        }
        for _ in 0..10 {
            h.record(100_000);
        }
        let s = h.snapshot();
        let p50 = s.quantile(0.5);
        let p99 = s.quantile(0.99);
        assert!((64..=256).contains(&p50), "p50 = {p50}");
        assert!(p99 >= 65_536, "p99 = {p99}");
        assert!((s.mean() - (90.0 * 100.0 + 10.0 * 100_000.0) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_concurrent_records_all_land() {
        let h = std::sync::Arc::new(Histogram::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count, 4000);
    }
}
