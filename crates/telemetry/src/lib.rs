//! # qpinn-telemetry
//!
//! Structured observability for the qpinn training stack, std-only (the
//! sandbox has no registry access, so this layer depends on nothing).
//!
//! Three cooperating pieces:
//!
//! * **Spans** ([`span`]) — RAII timers with a thread-local span stack.
//!   Dropping the guard emits a `span` event carrying the nesting path
//!   (`epoch/forward`) and duration, and feeds a `span.<name>_ns`
//!   histogram for aggregate phase accounting. Dormant spans (no sink
//!   installed) cost one atomic load.
//! * **Metrics** ([`registry`], [`metrics`]) — named atomic counters,
//!   gauges, and log2-bucketed histograms in a global [`Registry`];
//!   always-on (an atomic add per update) so a final snapshot is
//!   available even for runs that never installed a sink.
//! * **Sinks** ([`sink`]) — pluggable receivers for the event stream:
//!   [`JsonlSink`] writes one versioned JSON object per line for machine
//!   consumption, [`StderrSink`] prints warns/marks for humans. The bench
//!   harness points a [`JsonlSink`] at a per-run file via `--telemetry`.
//! * **Exposition** ([`prometheus`]) — renders a [`MetricsSnapshot`] as a
//!   Prometheus text-format page; `qpinn-obs`'s embedded HTTP server
//!   serves it at `/metrics`.
//! * **Request tracing** ([`trace`], [`access`]) — a per-request
//!   [`TraceCtx`] minted by the serve plane plus a bounded ring-buffer
//!   access log (`qpinn-access-v1`) recording every request's latency
//!   decomposition; backs `GET /v1/traces` and `qpinn-obs requests`/
//!   `slo`. Off by default: one relaxed atomic load per request.
//!
//! ## Event schema (v1)
//!
//! Every line is an object with fixed top-level keys:
//!
//! ```json
//! {"v":1,"ts_ns":12345,"kind":"span","name":"forward",
//!  "thread":"main","fields":{"path":"epoch/forward","dur_ns":81920}}
//! ```
//!
//! `kind` is one of `span`, `metrics`, `mark`, `warn`. New event names
//! and field keys may appear without a version bump; `v` changes only if
//! an existing key changes meaning. The first line of a JSONL stream is
//! always a `telemetry_start` mark carrying the schema version.
//!
//! ## Overhead budget
//!
//! The instrumented hot paths (tensor kernels through the work-stealing
//! pool) must stay within 2% of un-instrumented throughput — enforced by
//! the CI perf guard over `qpinn-bench --bin kernels`. The rules that
//! keep it true: no event construction before a [`sink::enabled`] check,
//! no per-task atomics in the pool (workers flush local counts at drain
//! boundaries), and no locks anywhere a kernel loop can reach.

#![deny(missing_docs)]

pub mod access;
pub mod event;
pub mod metrics;
pub mod names;
pub mod prometheus;
pub mod registry;
pub mod sink;
pub mod span;
pub mod trace;

pub use access::AccessRecord;
pub use event::{Event, Kind, Value, SCHEMA_VERSION};
pub use trace::TraceCtx;
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use registry::{counter, gauge, global, histogram, MetricsSnapshot, Registry};
pub use sink::{
    emit, enabled, flush, install, note_write_error, shutdown, take_write_error, JsonlSink,
    MemorySink, Sink, StderrSink,
};
pub use span::span;

/// Emit a `warn` event named `code` with a human-readable message, and
/// count it under `warn.<code>` so warnings survive into metric
/// snapshots. Returns the message (convenient for also logging or
/// surfacing it to a caller).
pub fn warn(code: &str, msg: impl Into<String>) -> String {
    let msg = msg.into();
    registry::counter(&format!("warn.{code}")).inc();
    if enabled() {
        emit(Event::new(Kind::Warn, code).field("msg", msg.clone()));
    }
    msg
}

/// Emit a `mark` event (noteworthy occurrence) when telemetry is active.
/// The closure builds the field list only when someone is listening.
pub fn mark(name: &str, build: impl FnOnce(Event) -> Event) {
    if enabled() {
        emit(build(Event::new(Kind::Mark, name)));
    }
}

/// Serializes tests that touch the global sink list; the runtime never
/// needs this (sinks are installed once at startup).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    use std::sync::{Mutex, OnceLock};
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn warn_counts_even_when_dormant() {
        let before = registry::counter("warn.test_code").get();
        let msg = warn("test_code", "something odd");
        assert_eq!(msg, "something odd");
        assert_eq!(registry::counter("warn.test_code").get(), before + 1);
    }

    #[test]
    fn mark_builds_fields_lazily() {
        let _guard = crate::test_lock();
        // Dormant: closure must not run.
        shutdown();
        mark("lazy", |_| panic!("must not build fields when dormant"));
        // Active: fields arrive.
        let mem = Arc::new(MemorySink::default());
        install(mem.clone());
        mark("resumed", |e| e.field("epoch", 7u64));
        shutdown();
        let events = mem.events.lock().unwrap();
        assert!(events
            .iter()
            .any(|e| e.name == "resumed" && e.fields.iter().any(|(k, _)| k == "epoch")));
    }
}
