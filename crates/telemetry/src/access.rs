//! Structured access log: the `qpinn-access-v1` record, a bounded
//! ring-buffer sink, and an optional JSONL file writer.
//!
//! Every HTTP request the serve plane finishes (success, 429-shed, or
//! error) becomes one [`AccessRecord`]: trace id, route, `model@version`,
//! status, shed reason, batch size, and the decomposed latency —
//! queue wait, batch linger, compute, serialization, total. Records land
//! in a process-global ring bounded at a configured capacity (oldest
//! dropped first, so memory is O(cap) no matter how long the server
//! runs), which backs the server's `GET /v1/traces?n=K` endpoint; when a
//! log path is attached each record is also appended as one JSON line,
//! which `qpinn-obs requests`/`qpinn-obs slo` consume offline.
//!
//! ## Schema (`qpinn-access-v1`)
//!
//! ```json
//! {"v":"qpinn-access-v1","trace":"91b2c55e01f4a9d3","ts_ns":12345,
//!  "route":"/v1/eval","model":"heat@3","status":200,"shed":"",
//!  "batch":4,"points":128,"queue_ns":81920,"batch_ns":1966080,
//!  "compute_ns":524288,"serialize_ns":40960,"total_ns":2694144}
//! ```
//!
//! `shed` is `""`, `"pending_cap"` (connection queue full, shed before
//! the request was read) or `"queue_full"` (per-model batch queue full).
//! New keys may appear without a version bump; `v` changes only if an
//! existing key changes meaning. The tail of the ring renders as
//! `qpinn-traces-v1` (see [`render_traces`]), the shape `/v1/traces`
//! serves.
//!
//! ## Dormant contract
//!
//! [`enabled`] is one relaxed atomic load; [`record`] returns
//! immediately on it when no ring is configured, and [`crate::trace::TraceCtx::mint`]
//! checks it before generating ids. The ring is only ever configured by
//! an explicit [`configure`] call (the serve plane does this at startup
//! unless tracing is disabled in its config) — training-only processes
//! never pay more than the single load.

use crate::event::write_json_str;
use std::collections::VecDeque;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// One finished HTTP request, as logged. All timings are nanoseconds;
/// stages that did not apply (e.g. a shed never reached the batcher)
/// are zero, and `queue_ns + batch_ns + compute_ns <= total_ns` always
/// holds (the remainder is parse/scatter/write time).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct AccessRecord {
    /// Request trace id (16 hex digits, or the inbound id when adopted).
    pub trace: String,
    /// Completion timestamp, nanoseconds since the process telemetry
    /// epoch ([`crate::event::now_ns`]).
    pub ts_ns: u64,
    /// Matched route (`/v1/eval`, …); `""` for connection-queue sheds,
    /// which are answered before the request line is read.
    pub route: String,
    /// `id@version` of the model involved, `""` when none.
    pub model: String,
    /// Numeric HTTP status of the response (`200`, `429`, `500`, …).
    pub status: u16,
    /// Shed reason: `""`, `"pending_cap"`, or `"queue_full"`.
    pub shed: String,
    /// Requests coalesced into the forward pass that served this one
    /// (0 when the request never reached a dispatch).
    pub batch: u64,
    /// Evaluation points carried by this request (0 for non-eval routes).
    pub points: u64,
    /// Time spent queued before the dispatcher began forming its batch.
    pub queue_ns: u64,
    /// Time spent lingering while the batch filled.
    pub batch_ns: u64,
    /// Forward-pass wall time of the dispatched batch (shared by every
    /// request in it, attributed whole to each).
    pub compute_ns: u64,
    /// Scatter + response serialization + socket write time.
    pub serialize_ns: u64,
    /// End-to-end time from request read to response written.
    pub total_ns: u64,
}

impl AccessRecord {
    /// Render as one `qpinn-access-v1` JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(256);
        s.push_str("{\"v\":\"qpinn-access-v1\",\"trace\":");
        write_json_str(&mut s, &self.trace);
        s.push_str(&format!(",\"ts_ns\":{}", self.ts_ns));
        s.push_str(",\"route\":");
        write_json_str(&mut s, &self.route);
        s.push_str(",\"model\":");
        write_json_str(&mut s, &self.model);
        s.push_str(&format!(",\"status\":{},\"shed\":", self.status));
        write_json_str(&mut s, &self.shed);
        s.push_str(&format!(
            ",\"batch\":{},\"points\":{},\"queue_ns\":{},\"batch_ns\":{},\
             \"compute_ns\":{},\"serialize_ns\":{},\"total_ns\":{}}}",
            self.batch,
            self.points,
            self.queue_ns,
            self.batch_ns,
            self.compute_ns,
            self.serialize_ns,
            self.total_ns
        ));
        s
    }
}

/// Render a record slice as the `qpinn-traces-v1` body served by
/// `GET /v1/traces`: oldest first, one object per record, same keys as
/// the JSONL schema minus the per-line `v`. `enabled` reports whether
/// tracing is live (the server passes [`enabled`]); pure so conformance
/// tests can freeze the shape without global state.
pub fn render_traces(records: &[AccessRecord], enabled: bool) -> String {
    let mut s = String::with_capacity(64 + records.len() * 256);
    s.push_str("{\"schema\":\"qpinn-traces-v1\",\"enabled\":");
    s.push_str(if enabled { "true" } else { "false" });
    s.push_str(&format!(",\"count\":{},\"traces\":[", records.len()));
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let line = r.to_json_line();
        // Strip the leading {"v":"qpinn-access-v1", — the envelope
        // already names the schema once.
        s.push('{');
        s.push_str(line.trim_start_matches("{\"v\":\"qpinn-access-v1\","));
    }
    s.push_str("]}");
    s
}

static ENABLED: AtomicBool = AtomicBool::new(false);

struct RingState {
    cap: usize,
    buf: VecDeque<AccessRecord>,
    log: Option<std::io::BufWriter<std::fs::File>>,
}

fn state() -> MutexGuard<'static, RingState> {
    static STATE: OnceLock<Mutex<RingState>> = OnceLock::new();
    STATE
        .get_or_init(|| {
            Mutex::new(RingState {
                cap: 0,
                buf: VecDeque::new(),
                log: None,
            })
        })
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// True when an access ring is configured. One relaxed atomic load —
/// the entire per-request cost of tracing when it is off.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Configure the ring with capacity `cap` (> 0) and enable tracing.
/// Clears previously buffered records so a fresh server starts with a
/// fresh window. A `cap` of 0 is equivalent to [`disable`].
pub fn configure(cap: usize) {
    if cap == 0 {
        disable();
        return;
    }
    let mut st = state();
    st.cap = cap;
    st.buf.clear();
    ENABLED.store(true, Ordering::Relaxed);
}

/// Attach a JSONL file (truncating `path`) that every subsequent record
/// is appended to. Requires a configured ring ([`configure`] first).
pub fn log_to(path: &std::path::Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    state().log = Some(std::io::BufWriter::new(file));
    Ok(())
}

/// Disable tracing: clears the ring, flushes and drops any attached log
/// writer. Subsequent [`record`] calls are one atomic load.
pub fn disable() {
    ENABLED.store(false, Ordering::Relaxed);
    let mut st = state();
    st.buf.clear();
    st.cap = 0;
    if let Some(mut w) = st.log.take() {
        if let Err(e) = w.flush() {
            crate::sink::note_write_error("access log flush", &e);
        }
    }
}

/// Append one record: pushes into the ring (dropping the oldest past
/// capacity) and writes a JSONL line if a log file is attached. No-op
/// when tracing is off.
pub fn record(rec: AccessRecord) {
    if !enabled() {
        return;
    }
    let mut st = state();
    if st.log.is_some() {
        let line = rec.to_json_line();
        let w = st.log.as_mut().expect("checked above");
        // Flush per record: an access log must survive a process that
        // exits without running server shutdown (bench leaks its server
        // handle on purpose), and one small write syscall per request
        // is noise against ms-scale request latency.
        if let Err(e) = w
            .write_all(line.as_bytes())
            .and_then(|()| w.write_all(b"\n"))
            .and_then(|()| w.flush())
        {
            // Same re-entrancy rule as the JSONL sink: never emit from
            // inside the write path, just count and stash the message.
            crate::sink::note_write_error("access log", &e);
        }
    }
    while st.buf.len() >= st.cap.max(1) {
        st.buf.pop_front();
    }
    st.buf.push_back(rec);
}

/// Flush the attached log file, if any (called on server shutdown).
pub fn flush() {
    if let Some(w) = state().log.as_mut() {
        if let Err(e) = w.flush() {
            crate::sink::note_write_error("access log flush", &e);
        }
    }
}

/// The last `n` records, oldest first. Empty when tracing is off.
pub fn last(n: usize) -> Vec<AccessRecord> {
    let st = state();
    let skip = st.buf.len().saturating_sub(n);
    st.buf.iter().skip(skip).cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(trace: &str, status: u16) -> AccessRecord {
        AccessRecord {
            trace: trace.into(),
            ts_ns: 1000,
            route: "/v1/eval".into(),
            model: "m@1".into(),
            status,
            shed: String::new(),
            batch: 2,
            points: 4,
            queue_ns: 10,
            batch_ns: 20,
            compute_ns: 30,
            serialize_ns: 5,
            total_ns: 80,
        }
    }

    #[test]
    fn json_line_is_stable_and_escaped() {
        let mut r = rec("abc123", 200);
        r.model = "we\"ird@1".into();
        let line = r.to_json_line();
        assert!(line.starts_with("{\"v\":\"qpinn-access-v1\","));
        assert!(line.contains("\"model\":\"we\\\"ird@1\""));
        assert!(line.contains("\"total_ns\":80"));
        assert!(line.ends_with('}'));
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let _guard = crate::test_lock();
        configure(3);
        for i in 0..5u16 {
            record(rec(&format!("t{i}"), 200 + i));
        }
        let tail = last(10);
        assert_eq!(tail.len(), 3, "ring must drop oldest past capacity");
        assert_eq!(tail[0].trace, "t2");
        assert_eq!(tail[2].trace, "t4");
        assert_eq!(last(1)[0].trace, "t4");
        disable();
        assert!(last(10).is_empty());
        record(rec("ignored", 200));
        assert!(last(10).is_empty(), "disabled ring must not record");
    }

    #[test]
    fn render_traces_wraps_records() {
        let body = render_traces(&[rec("aa", 200), rec("bb", 429)], true);
        assert!(body.starts_with("{\"schema\":\"qpinn-traces-v1\",\"enabled\":true,\"count\":2,"));
        assert!(body.contains("{\"trace\":\"aa\""));
        assert!(body.contains("\"status\":429"));
        assert!(!body.contains("qpinn-access-v1"), "per-line v is stripped");
    }

    #[test]
    fn log_file_gets_one_line_per_record() {
        let _guard = crate::test_lock();
        let dir = std::env::temp_dir().join(format!("qpinn_access_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.jsonl");
        configure(8);
        log_to(&path).unwrap();
        record(rec("one", 200));
        record(rec("two", 500));
        disable(); // flushes + drops the writer
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"trace\":\"one\""));
        assert!(lines[1].contains("\"status\":500"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
