//! Canonical metric names for the serving plane.
//!
//! Metrics in this registry are created on first use by name, so nothing
//! enforces spelling at the call site; the `qpinn-serve` instrument
//! points and the tests/CI that assert on them both import these
//! constants so the two cannot drift. (Training-side names — the
//! `train.progress.*` gauges, `persist.checkpoint.*` counters,
//! `span.*_ns` histograms — predate this module and remain string
//! literals at their single emit sites.)
//!
//! Prometheus exposition mangles `.` to `_` and suffixes counters with
//! `_total`, so e.g. [`SERVE_SHED`] scrapes as `qpinn_serve_http_shed_total`.

/// Counter: HTTP requests accepted by the inference server, by outcome
/// of routing (incremented once per handled connection).
pub const SERVE_REQUESTS: &str = "serve.http.requests";

/// Counter: requests shed with `429 Too Many Requests` (connection
/// queue full or per-model admission cap exceeded).
pub const SERVE_SHED: &str = "serve.http.shed";

/// Counter: requests that failed with a `5xx` status.
pub const SERVE_ERRORS: &str = "serve.http.errors";

/// Histogram: end-to-end request latency in microseconds, measured from
/// parse to response write.
pub const SERVE_LATENCY_US: &str = "serve.http.latency_us";

/// Histogram: number of eval requests coalesced into one forward pass.
/// A recorded value ≥ 2 proves batching happened.
pub const SERVE_BATCH_SIZE: &str = "serve.batch.size";

/// Histogram: total points per dispatched forward-pass batch.
pub const SERVE_BATCH_POINTS: &str = "serve.batch.points";

/// Counter: forward-pass batches dispatched.
pub const SERVE_BATCH_FLUSHES: &str = "serve.batch.flushes";

/// Gauge: eval requests queued (all models) at last batch dispatch.
pub const SERVE_QUEUE_DEPTH: &str = "serve.queue.depth";

/// Histogram: nanoseconds an eval request waited in the per-model batch
/// queue before the dispatcher began forming its batch. Per-route /
/// per-model variants append `.by_route.<route>` / `.by_model.<id.vN>`
/// to this and the other `serve.latency.*` bases (see
/// [`route_key`] / [`model_key`]).
pub const SERVE_LAT_QUEUE_NS: &str = "serve.latency.queue_ns";

/// Histogram: nanoseconds a batched request spent lingering while the
/// dispatcher filled its batch (0 for the job that opened the batch).
pub const SERVE_LAT_BATCH_NS: &str = "serve.latency.batch_ns";

/// Histogram: forward-pass wall time of the batch that served a request,
/// attributed whole to every request coalesced into it.
pub const SERVE_LAT_COMPUTE_NS: &str = "serve.latency.compute_ns";

/// Histogram: end-to-end request latency in nanoseconds (same window as
/// [`SERVE_LATENCY_US`], finer unit, decomposable against the stage
/// histograms above: queue + batch + compute ≤ total).
pub const SERVE_LAT_TOTAL_NS: &str = "serve.latency.total_ns";

/// Label key for a route path, usable as a metric-name suffix: `/`
/// separators become `.`-free underscores (`/v1/eval` → `v1_eval`).
/// Prometheus exposition then mangles the result like any other name.
pub fn route_key(path: &str) -> String {
    path.trim_matches('/').replace(['/', '.'], "_")
}

/// Label key for `model@version`, usable as a metric-name suffix
/// (`heat@3` → `heat.v3`; non-name characters become `_`).
pub fn model_key(id: &str, version: u64) -> String {
    let safe: String = id
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    format!("{safe}.v{version}")
}

/// Counter: models loaded from disk into the registry.
pub const SERVE_REGISTRY_LOADS: &str = "serve.registry.loads";

/// Counter: resolve calls served from the in-memory registry cache.
pub const SERVE_REGISTRY_HITS: &str = "serve.registry.hits";

/// Counter: models evicted to stay under the registry byte budget.
pub const SERVE_REGISTRY_EVICTIONS: &str = "serve.registry.evictions";

/// Gauge: bytes of model snapshots currently resident in the registry.
pub const SERVE_REGISTRY_BYTES: &str = "serve.registry.bytes";

/// Counter: train jobs accepted via `POST /v1/train`.
pub const SERVE_JOBS_STARTED: &str = "serve.jobs.started";

/// Counter: train jobs that completed and published a model version.
pub const SERVE_JOBS_COMPLETED: &str = "serve.jobs.completed";

/// Counter: train jobs that failed (training error or publish failure).
pub const SERVE_JOBS_FAILED: &str = "serve.jobs.failed";
