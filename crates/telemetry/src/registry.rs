//! The global metrics registry: named counters, gauges, and histograms,
//! interned once and shared by reference afterwards.
//!
//! Lookup takes a short mutex on a name map; the returned handles are
//! `Arc`s whose updates are lock-free, so hot paths should look a metric
//! up once and hold the handle rather than re-resolving per update.

use crate::event::{write_json_str, Event, Kind, Value};
use crate::metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

/// Poison-tolerant lock on a name map: the maps only hold interned `Arc`
/// handles and are never left mid-mutation across a panic point, so a
/// poisoned guard is still fully valid. Recovering keeps one panicking
/// test thread from cascading `PoisonError` failures through every later
/// metric lookup in the process.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// A process-wide named-metric table.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
}

/// The global registry used by the convenience free functions.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::default)
}

/// Shorthand: `global()` counter lookup.
pub fn counter(name: &str) -> Arc<Counter> {
    global().counter(name)
}

/// Shorthand: `global()` gauge lookup.
pub fn gauge(name: &str) -> Arc<Gauge> {
    global().gauge(name)
}

/// Shorthand: `global()` histogram lookup.
pub fn histogram(name: &str) -> Arc<Histogram> {
    global().histogram(name)
}

impl Registry {
    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = lock(&self.counters);
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = lock(&self.gauges);
        map.entry(name.to_string()).or_default().clone()
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = lock(&self.histograms);
        map.entry(name.to_string()).or_default().clone()
    }

    /// A point-in-time copy of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = lock(&self.counters)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let gauges = lock(&self.gauges)
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        let histograms = lock(&self.histograms)
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Zero every registered metric (per-run isolation in tests and
    /// benches; the names stay registered).
    pub fn reset(&self) {
        for c in lock(&self.counters).values() {
            c.reset();
        }
        for g in lock(&self.gauges).values() {
            g.reset();
        }
        for h in lock(&self.histograms).values() {
            h.reset();
        }
    }
}

/// A point-in-time copy of a [`Registry`].
#[derive(Clone, Debug, Default)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histogram contents by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of a named counter, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    }

    /// Serialize as a standalone JSON object (the final per-run metrics
    /// file format): histograms report count/sum/max/mean/p50/p99 rather
    /// than raw buckets.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\"schema\":\"qpinn-metrics-v1\",\"counters\":{");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write_json_str(&mut s, k);
            let _ = write!(s, ":{v}");
        }
        s.push_str("},\"gauges\":{");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write_json_str(&mut s, k);
            if v.is_finite() {
                let _ = write!(s, ":{v}");
            } else {
                s.push_str(":null");
            }
        }
        s.push_str("},\"histograms\":{");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write_json_str(&mut s, k);
            let _ = write!(
                s,
                ":{{\"count\":{},\"sum\":{},\"max\":{},\"mean\":{},\"p50\":{},\"p99\":{}}}",
                h.count,
                h.sum,
                h.max,
                h.mean(),
                h.quantile(0.5),
                h.quantile(0.99)
            );
        }
        s.push_str("}}");
        s
    }

    /// Flatten into a single [`Event`] (kind `metrics`) for sinks:
    /// counters and gauges become fields, histograms contribute
    /// `<name>.mean_ns` and `<name>.count`.
    pub fn to_event(&self, name: &str) -> Event {
        let mut e = Event::new(Kind::Metrics, name);
        for (k, v) in &self.counters {
            e.fields.push((k.clone(), Value::U64(*v)));
        }
        for (k, v) in &self.gauges {
            e.fields.push((k.clone(), Value::F64(*v)));
        }
        for (k, h) in &self.histograms {
            e.fields.push((format!("{k}.count"), Value::U64(h.count)));
            e.fields.push((format!("{k}.mean_ns"), Value::F64(h.mean())));
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_metric() {
        let r = Registry::default();
        r.counter("a").add(1);
        r.counter("a").add(2);
        assert_eq!(r.counter("a").get(), 3);
    }

    #[test]
    fn snapshot_lists_all_kinds_sorted() {
        let r = Registry::default();
        r.counter("z.count").add(7);
        r.counter("a.count").add(1);
        r.gauge("g").set(2.5);
        r.histogram("h").record(8);
        let s = r.snapshot();
        assert_eq!(
            s.counters,
            vec![("a.count".into(), 1), ("z.count".into(), 7)]
        );
        assert_eq!(s.gauges, vec![("g".into(), 2.5)]);
        assert_eq!(s.histograms.len(), 1);
        assert_eq!(s.counter("z.count"), Some(7));
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn reset_zeroes_but_keeps_names() {
        let r = Registry::default();
        r.counter("c").add(5);
        r.histogram("h").record(10);
        r.reset();
        let s = r.snapshot();
        assert_eq!(s.counter("c"), Some(0));
        assert_eq!(s.histograms[0].1.count, 0);
    }

    #[test]
    fn poisoned_registry_lock_recovers() {
        // Metric maps hold plain data; a panic while holding the lock must
        // not disable counters for the rest of the process.
        let r = std::sync::Arc::new(Registry::default());
        r.counter("survivor").add(1);
        let poisoner = std::sync::Arc::clone(&r);
        let _ = std::thread::spawn(move || {
            let _c = poisoner.counter("survivor"); // take+drop, then poison
            let _guard = poisoner.counters.lock().unwrap();
            panic!("poison the counter map");
        })
        .join();
        assert!(r.counters.is_poisoned(), "setup: mutex must be poisoned");
        r.counter("survivor").add(2);
        assert_eq!(r.counter("survivor").get(), 3);
        assert_eq!(r.snapshot().counter("survivor"), Some(3));
    }

    #[test]
    fn snapshot_json_is_object_shaped() {
        let r = Registry::default();
        r.counter("train.grad_evals").add(3);
        r.gauge("loss").set(0.5);
        r.histogram("phase.step_ns").record(1024);
        let j = r.snapshot().to_json();
        assert!(j.starts_with("{\"schema\":\"qpinn-metrics-v1\""));
        assert!(j.contains("\"train.grad_evals\":3"));
        assert!(j.contains("\"loss\":0.5"));
        assert!(j.contains("\"phase.step_ns\":{\"count\":1"));
    }
}
