//! Request-scoped trace context for the serve plane.
//!
//! A [`TraceCtx`] is minted once per HTTP request (or inherited from an
//! inbound `x-qpinn-trace` header for cross-process propagation) and
//! carried by value through registry resolution, the batching queue, the
//! dispatcher flush, and `predict_batch`. The id ties together the span
//! events, the access-log record, and the response header for one
//! request, so a timeline or a log line can be joined back to the exact
//! HTTP exchange that produced it.
//!
//! ## Dormant contract
//!
//! Tracing rides the access-ring switch ([`crate::access::enabled`]):
//! when no ring is configured, [`TraceCtx::mint`] is a single relaxed
//! atomic load returning a disabled context — no clock read, no id
//! generation, no allocation. Instrument points must check
//! [`TraceCtx::on`] before building anything per-request.

use std::sync::atomic::{AtomicU64, Ordering};

/// Per-request trace context: a short hex id plus an enabled flag
/// snapshotted at mint time.
#[derive(Clone, Debug, Default)]
pub struct TraceCtx {
    /// 16-hex-digit request id (empty when tracing is off).
    pub id: String,
    /// Whether tracing was enabled when this context was minted.
    pub on: bool,
}

impl TraceCtx {
    /// A disabled context (used when tracing is off or a caller has no
    /// request scope, e.g. unit tests driving the batcher directly).
    pub fn disabled() -> Self {
        TraceCtx::default()
    }

    /// Mint a context for a new request. When tracing is off this is one
    /// relaxed atomic load. When on, a valid inbound id (1–32 ASCII hex
    /// digits, as sent in an `x-qpinn-trace` request header) is adopted
    /// verbatim in lowercase; otherwise a fresh id is generated.
    pub fn mint(inbound: Option<&str>) -> Self {
        if !crate::access::enabled() {
            return TraceCtx::disabled();
        }
        let id = match inbound {
            Some(raw) if is_valid_id(raw) => raw.to_ascii_lowercase(),
            _ => next_id(),
        };
        TraceCtx { id, on: true }
    }
}

/// Mint a fresh 16-hex-digit id from the process-global splitmix64
/// stream, independent of whether tracing is enabled. Run records
/// (`qpinn-run-v1`) use this so run ids and request trace ids share one
/// id scheme and never collide within a process.
pub fn fresh_id() -> String {
    next_id()
}

/// An inbound id is acceptable when it is 1–32 ASCII hex digits — wide
/// enough for 128-bit upstream ids, narrow enough to bound the echo.
fn is_valid_id(s: &str) -> bool {
    !s.is_empty() && s.len() <= 32 && s.bytes().all(|b| b.is_ascii_hexdigit())
}

/// Generate a fresh 16-hex-digit id: a process-global splitmix64 stream
/// seeded from wall-clock nanos XOR pid, so concurrent processes and
/// restarts do not collide in practice while staying std-only and free
/// of any RNG dependency.
fn next_id() -> String {
    static STATE: AtomicU64 = AtomicU64::new(0);
    let mut cur = STATE.load(Ordering::Relaxed);
    loop {
        let seed = if cur == 0 {
            let nanos = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos() as u64)
                .unwrap_or(0x9e3779b97f4a7c15);
            nanos ^ ((std::process::id() as u64) << 32) | 1
        } else {
            cur
        };
        let next = seed.wrapping_add(0x9e3779b97f4a7c15);
        match STATE.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => {
                // splitmix64 finalizer over the reserved slot.
                let mut z = next;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^= z >> 31;
                return format!("{z:016x}");
            }
            Err(seen) => cur = seen,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_hex16() {
        let a = next_id();
        let b = next_id();
        assert_ne!(a, b);
        for id in [&a, &b] {
            assert_eq!(id.len(), 16);
            assert!(id.bytes().all(|c| c.is_ascii_hexdigit()));
        }
    }

    #[test]
    fn inbound_validation() {
        assert!(is_valid_id("deadbeef"));
        assert!(is_valid_id("0123456789abcdef0123456789abcdef"));
        assert!(!is_valid_id(""));
        assert!(!is_valid_id("0123456789abcdef0123456789abcdef0")); // 33
        assert!(!is_valid_id("not-hex!"));
    }

    #[test]
    fn mint_is_disabled_without_a_ring() {
        let _guard = crate::test_lock();
        crate::access::disable();
        let ctx = TraceCtx::mint(Some("deadbeef"));
        assert!(!ctx.on);
        assert!(ctx.id.is_empty());
    }

    #[test]
    fn mint_adopts_valid_inbound_ids() {
        let _guard = crate::test_lock();
        crate::access::configure(8);
        let ctx = TraceCtx::mint(Some("DEADBEEF"));
        assert!(ctx.on);
        assert_eq!(ctx.id, "deadbeef");
        let fresh = TraceCtx::mint(Some("not hex"));
        assert_eq!(fresh.id.len(), 16);
        crate::access::disable();
    }
}
