//! RAII span timers with a thread-local span stack.
//!
//! `span("epoch")` starts a timed region that ends when the guard drops.
//! Nested spans build a `/`-separated path (`epoch/forward`), recorded in
//! the emitted event so a reader can reconstruct the tree without ids.
//! Every completed span also feeds a registry histogram named
//! `span.<name>_ns`, so phase accounting survives into the final metrics
//! snapshot even when only aggregate numbers are wanted.
//!
//! When no sink is installed ([`crate::sink::enabled`] is false) a span is
//! a single atomic load — no clock read, no allocation — keeping
//! instrumented hot paths within the observability overhead budget.

use crate::event::{Event, Kind, Value};
use crate::registry;
use crate::sink;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// A live timed region; completes (and emits) on drop.
pub struct SpanGuard {
    start: Option<Instant>,
    name: &'static str,
    fields: Vec<(String, Value)>,
}

/// Start a span named `name`. Dropping the guard records the duration.
///
/// Span names must be `'static` so the thread-local stack stays
/// allocation-free; dynamic context belongs in fields
/// ([`SpanGuard::field`]).
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !sink::enabled() {
        return SpanGuard {
            start: None,
            name,
            fields: Vec::new(),
        };
    }
    SPAN_STACK.with(|s| s.borrow_mut().push(name));
    SpanGuard {
        start: Some(Instant::now()),
        name,
        fields: Vec::new(),
    }
}

impl SpanGuard {
    /// Attach a field to the completion event (no-op when dormant).
    pub fn field(&mut self, key: impl Into<String>, value: impl Into<Value>) -> &mut Self {
        if self.start.is_some() {
            self.fields.push((key.into(), value.into()));
        }
        self
    }

    /// True when the span is actually timing (a sink is installed).
    pub fn is_live(&self) -> bool {
        self.start.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(start) = self.start else {
            return;
        };
        let dur_ns = start.elapsed().as_nanos() as u64;
        let path = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            // Pop our own frame; tolerate a foreign top if a guard was
            // moved across threads (path then reflects the drop site).
            if stack.last() == Some(&self.name) {
                stack.pop();
            }
            path
        });
        registry::histogram(&format!("span.{}_ns", self.name)).record(dur_ns);
        let mut e = Event::new(Kind::Span, self.name)
            .field("path", path)
            .field("dur_ns", dur_ns);
        e.fields.append(&mut self.fields);
        sink::emit(e);
    }
}

/// Current nesting depth on this thread (diagnostics/tests).
pub fn depth() -> usize {
    SPAN_STACK.with(|s| s.borrow().len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::MemorySink;
    use crate::test_lock;
    use std::sync::Arc;

    #[test]
    fn dormant_span_is_free_and_stackless() {
        let _guard = test_lock();
        crate::sink::shutdown();
        {
            let s = span("outer");
            assert!(!s.is_live());
            assert_eq!(depth(), 0);
        }
    }

    #[test]
    fn nested_spans_record_paths_and_histograms() {
        let _guard = test_lock();
        let mem = Arc::new(MemorySink::default());
        crate::sink::install(mem.clone());
        {
            let mut outer = span("epoch");
            outer.field("epoch", 3u64);
            {
                let _inner = span("forward");
                assert_eq!(depth(), 2);
            }
        }
        crate::sink::shutdown();
        let events = mem.events.lock().unwrap();
        assert_eq!(events.len(), 2, "{events:?}");
        // Inner drops first.
        assert_eq!(events[0].name, "forward");
        assert!(events[0]
            .fields
            .iter()
            .any(|(k, v)| k == "path" && *v == Value::Str("epoch/forward".into())));
        assert_eq!(events[1].name, "epoch");
        assert!(events[1]
            .fields
            .iter()
            .any(|(k, v)| k == "path" && *v == Value::Str("epoch".into())));
        assert!(events[1].fields.iter().any(|(k, _)| k == "epoch"));
        assert!(registry::histogram("span.forward_ns").snapshot().count >= 1);
        assert_eq!(depth(), 0);
    }
}
