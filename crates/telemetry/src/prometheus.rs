//! Prometheus text exposition (format 0.0.4) rendered from a
//! [`MetricsSnapshot`].
//!
//! The registry's dotted metric names (`train.grad_evals`,
//! `pool.worker0.tasks`) are sanitized into the Prometheus character set
//! (`train_grad_evals`) and prefixed (conventionally `qpinn_`). All three
//! metric kinds map onto native Prometheus types:
//!
//! * counters → `counter` samples with a `_total` suffix,
//! * gauges → `gauge` samples (non-finite values are skipped — Prometheus
//!   has `NaN` but scrapers treat it as absence anyway),
//! * log2-bucketed histograms → native `histogram` samples with
//!   cumulative `le="2^k"` buckets plus `_sum`/`_count`.
//!
//! Caller-supplied labels (e.g. `run_id`) are attached to every sample
//! with full label-value escaping (`\\`, `\"`, `\n`), so arbitrary run
//! identifiers cannot corrupt the exposition.

use crate::registry::MetricsSnapshot;
use std::fmt::Write as _;

/// Map a registry metric name into the Prometheus name character set
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`: every invalid character (most commonly the
/// registry's `.` separators) becomes `_`, and a leading digit gains a
/// `_` prefix.
pub fn sanitize_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for (i, c) in name.chars().enumerate() {
        let ok = c.is_ascii_alphanumeric() || c == '_' || c == ':';
        if ok {
            if i == 0 && c.is_ascii_digit() {
                out.push('_');
            }
            out.push(c);
        } else {
            out.push('_');
        }
    }
    if out.is_empty() {
        out.push('_');
    }
    out
}

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline must be backslash-escaped.
pub fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Render the shared label set (possibly with one extra per-sample label
/// such as `le`) as `{k="v",...}`, or nothing when there are no labels.
fn label_block(labels: &[(&str, &str)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels.iter().copied().chain(extra) {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{}=\"{}\"", sanitize_name(k), escape_label_value(v));
    }
    out.push('}');
    out
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else if v.is_nan() {
        out.push_str("NaN");
    } else if v > 0.0 {
        out.push_str("+Inf");
    } else {
        out.push_str("-Inf");
    }
}

/// Render a snapshot as a Prometheus text-format page.
///
/// `prefix` is prepended to every sanitized metric name (pass `"qpinn_"`
/// for the standard exposition); `labels` are attached to every sample.
pub fn render(snap: &MetricsSnapshot, prefix: &str, labels: &[(&str, &str)]) -> String {
    let mut out = String::with_capacity(1024);
    let base = label_block(labels, None);
    for (name, v) in &snap.counters {
        let n = format!("{prefix}{}_total", sanitize_name(name));
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n}{base} {v}");
    }
    for (name, v) in &snap.gauges {
        if !v.is_finite() {
            continue;
        }
        let n = format!("{prefix}{}", sanitize_name(name));
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = write!(out, "{n}{base} ");
        write_f64(&mut out, *v);
        out.push('\n');
    }
    for (name, h) in &snap.histograms {
        let n = format!("{prefix}{}", sanitize_name(name));
        let _ = writeln!(out, "# TYPE {n} histogram");
        // Cumulative counts over the log2 buckets; stop at the last
        // populated bucket (the +Inf sample covers the rest).
        let last = h.buckets.iter().rposition(|&c| c > 0);
        let mut cum = 0u64;
        if let Some(last) = last {
            for (i, &c) in h.buckets.iter().enumerate().take(last + 1) {
                cum += c;
                // Bucket i counts values with floor(log2(v)) == i, so its
                // inclusive upper edge is 2^(i+1) - 1; report le="2^(i+1)".
                let le = format!("{}", 2u128 << i);
                let _ = writeln!(
                    out,
                    "{n}_bucket{} {cum}",
                    label_block(labels, Some(("le", &le)))
                );
            }
        }
        let _ = writeln!(
            out,
            "{n}_bucket{} {}",
            label_block(labels, Some(("le", "+Inf"))),
            h.count
        );
        let _ = writeln!(out, "{n}_sum{base} {}", h.sum);
        let _ = writeln!(out, "{n}_count{base} {}", h.count);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn sanitizes_names() {
        assert_eq!(sanitize_name("train.grad_evals"), "train_grad_evals");
        assert_eq!(sanitize_name("pool.worker0.tasks"), "pool_worker0_tasks");
        assert_eq!(sanitize_name("7bad-name"), "_7bad_name");
    }

    #[test]
    fn escapes_label_values() {
        assert_eq!(
            escape_label_value("a\"b\\c\nd"),
            "a\\\"b\\\\c\\nd"
        );
    }

    #[test]
    fn renders_all_three_metric_kinds() {
        let r = Registry::default();
        r.counter("train.grad_evals").add(12);
        r.gauge("train.progress.loss").set(0.5);
        r.gauge("bad.gauge").set(f64::NAN); // skipped
        r.histogram("span.epoch_ns").record(3);
        r.histogram("span.epoch_ns").record(1000);
        let page = render(&r.snapshot(), "qpinn_", &[]);
        assert!(page.contains("# TYPE qpinn_train_grad_evals_total counter"));
        assert!(page.contains("qpinn_train_grad_evals_total 12"));
        assert!(page.contains("# TYPE qpinn_train_progress_loss gauge"));
        assert!(page.contains("qpinn_train_progress_loss 0.5"));
        assert!(!page.contains("bad_gauge"));
        assert!(page.contains("# TYPE qpinn_span_epoch_ns histogram"));
        // 3 lands in bucket 1 (le=4), 1000 in bucket 9 (le=1024); the
        // cumulative count at the last populated bucket equals the total.
        assert!(page.contains("qpinn_span_epoch_ns_bucket{le=\"4\"} 1"));
        assert!(page.contains("qpinn_span_epoch_ns_bucket{le=\"1024\"} 2"));
        assert!(page.contains("qpinn_span_epoch_ns_bucket{le=\"+Inf\"} 2"));
        assert!(page.contains("qpinn_span_epoch_ns_sum 1003"));
        assert!(page.contains("qpinn_span_epoch_ns_count 2"));
    }

    #[test]
    fn shared_labels_attach_to_every_sample_with_escaping() {
        let r = Registry::default();
        r.counter("c").inc();
        r.histogram("h").record(1);
        let page = render(&r.snapshot(), "qpinn_", &[("run_id", "t1 \"q\"\nx")]);
        assert!(page.contains("qpinn_c_total{run_id=\"t1 \\\"q\\\"\\nx\"} 1"));
        assert!(page.contains("qpinn_h_bucket{run_id=\"t1 \\\"q\\\"\\nx\",le=\"+Inf\"} 1"));
        assert!(page.contains("qpinn_h_sum{run_id=\"t1 \\\"q\\\"\\nx\"} 1"));
    }

    #[test]
    fn empty_snapshot_renders_empty_page() {
        assert_eq!(render(&MetricsSnapshot::default(), "qpinn_", &[]), "");
    }
}
