//! Pluggable event sinks and the global dispatch path.
//!
//! `emit` is the single funnel every event goes through. When no sink is
//! installed the whole layer is dormant: [`enabled`] is one relaxed
//! atomic load, and instrumented code is expected to check it before
//! building an [`Event`] (spans do this internally).

use crate::event::{Event, Kind, SCHEMA_VERSION};
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

/// Receives every emitted [`Event`]. Implementations must be cheap and
/// non-blocking where possible; they are called on the emitting thread.
pub trait Sink: Send + Sync {
    /// Handle one event.
    fn record(&self, event: &Event);
    /// Flush buffered output (end of run, before process exit).
    fn flush(&self) {}
}

static ENABLED: AtomicBool = AtomicBool::new(false);

/// First pending sink write-error message, if any ([`note_write_error`]).
fn write_error_slot() -> &'static Mutex<Option<String>> {
    static SLOT: OnceLock<Mutex<Option<String>>> = OnceLock::new();
    SLOT.get_or_init(|| Mutex::new(None))
}

/// Record a failed sink write. Every failure bumps the
/// `telemetry.write_errors` counter (so lost-event volume survives into
/// metric snapshots); the first failure's message is kept for
/// [`take_write_error`] so a supervisor (the trainer, the bench harness)
/// can surface it as a `warn` event and a `TrainLog::warnings` entry
/// instead of the error being silently dropped.
///
/// Deliberately does **not** emit an event itself: sinks call this from
/// inside the dispatch path, where re-entering [`emit`] could deadlock.
pub fn note_write_error(context: &str, err: &std::io::Error) {
    crate::registry::counter("telemetry.write_errors").inc();
    let mut slot = write_error_slot().lock().unwrap_or_else(|e| e.into_inner());
    if slot.is_none() {
        *slot = Some(format!("{context}: {err}"));
    }
}

/// Take (and clear) the first pending sink write-error message. The
/// `telemetry.write_errors` counter reports the total failure count.
pub fn take_write_error() -> Option<String> {
    write_error_slot()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .take()
}

fn sinks() -> &'static RwLock<Vec<Arc<dyn Sink>>> {
    static SINKS: OnceLock<RwLock<Vec<Arc<dyn Sink>>>> = OnceLock::new();
    SINKS.get_or_init(|| RwLock::new(Vec::new()))
}

/// Poison-tolerant write lock on the sink list: a thread that panicked
/// mid-dispatch (e.g. a chaos test) must not wedge telemetry for the rest
/// of the process. Sink-list state is a plain `Vec` of `Arc`s, always
/// valid regardless of where the panicking thread stopped.
fn sinks_write() -> std::sync::RwLockWriteGuard<'static, Vec<Arc<dyn Sink>>> {
    sinks().write().unwrap_or_else(|e| e.into_inner())
}

/// Poison-tolerant read lock on the sink list; see [`sinks_write`].
fn sinks_read() -> std::sync::RwLockReadGuard<'static, Vec<Arc<dyn Sink>>> {
    sinks().read().unwrap_or_else(|e| e.into_inner())
}

/// True when at least one sink is installed. Instrumentation gates event
/// construction on this, so a telemetry-off run pays one atomic load per
/// potential event.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Install a sink; events emitted from now on reach it.
pub fn install(sink: Arc<dyn Sink>) {
    let mut v = sinks_write();
    v.push(sink);
    ENABLED.store(true, Ordering::Relaxed);
}

/// Remove every installed sink (flushing them first). Used by tests and
/// at the end of bench runs to make telemetry dormant again.
pub fn shutdown() {
    let mut v = sinks_write();
    for s in v.iter() {
        s.flush();
    }
    v.clear();
    ENABLED.store(false, Ordering::Relaxed);
}

/// Dispatch one event to every installed sink.
pub fn emit(event: Event) {
    if !enabled() {
        return;
    }
    let v = sinks_read();
    for s in v.iter() {
        s.record(&event);
    }
}

/// Flush every installed sink.
pub fn flush() {
    let v = sinks_read();
    for s in v.iter() {
        s.flush();
    }
}

/// Line-buffered JSONL file sink: one event per line, prefixed by a
/// `telemetry_start` mark carrying the schema version so a reader can
/// validate compatibility before parsing the stream.
pub struct JsonlSink {
    path: PathBuf,
    w: Mutex<BufWriter<File>>,
}

impl JsonlSink {
    /// Create (truncating) the JSONL file at `path` and write the header
    /// mark.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let path = path.as_ref().to_path_buf();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = File::create(&path)?;
        let sink = JsonlSink {
            path,
            w: Mutex::new(BufWriter::new(file)),
        };
        let header = Event::new(Kind::Mark, "telemetry_start")
            .field("schema", SCHEMA_VERSION)
            .field("pid", std::process::id() as u64);
        sink.record(&header);
        Ok(sink)
    }

    /// The file this sink writes to.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Sink for JsonlSink {
    fn record(&self, event: &Event) {
        let line = event.to_json_line();
        let mut w = self.w.lock().unwrap_or_else(|e| e.into_inner());
        // Best-effort: a full disk must not kill the training run — but
        // the loss is counted and surfaced, not silently swallowed. The
        // `telemetry.sink_err` failpoint injects exactly that write error.
        if let Err(e) = qpinn_testkit::fail_io("telemetry.sink_err")
            .and_then(|()| w.write_all(line.as_bytes()))
            .and_then(|()| w.write_all(b"\n"))
        {
            note_write_error(&format!("jsonl sink {}", self.path.display()), &e);
        }
    }

    fn flush(&self) {
        if let Err(e) = self.w.lock().unwrap_or_else(|e| e.into_inner()).flush() {
            note_write_error(&format!("jsonl sink {}", self.path.display()), &e);
        }
    }
}

/// Human-readable progress sink: prints warns and marks to stderr and
/// stays quiet about high-volume span/metrics events, so a long run shows
/// checkpoints, divergence, and anomalies without drowning the console.
pub struct StderrSink;

impl Sink for StderrSink {
    fn record(&self, event: &Event) {
        match event.kind {
            Kind::Warn | Kind::Mark => {
                let mut msg = format!(
                    "[telemetry {} {:.3}s] {}",
                    event.kind.as_str(),
                    event.ts_ns as f64 / 1e9,
                    event.name
                );
                for (k, v) in &event.fields {
                    use crate::event::Value;
                    match v {
                        Value::U64(x) => msg.push_str(&format!(" {k}={x}")),
                        Value::I64(x) => msg.push_str(&format!(" {k}={x}")),
                        Value::F64(x) => msg.push_str(&format!(" {k}={x:.4e}")),
                        Value::Str(s) => msg.push_str(&format!(" {k}={s:?}")),
                        Value::Bool(b) => msg.push_str(&format!(" {k}={b}")),
                    }
                }
                eprintln!("{msg}");
            }
            Kind::Span | Kind::Metrics => {}
        }
    }
}

/// A sink that buffers events in memory; test helper for asserting what
/// was emitted.
#[derive(Default)]
pub struct MemorySink {
    /// Recorded events, in emission order.
    pub events: Mutex<Vec<Event>>,
}

impl Sink for MemorySink {
    fn record(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_sink_writes_header_then_events() {
        let path = std::env::temp_dir().join(format!("qpinn-tel-sink-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).unwrap();
        sink.record(&Event::new(Kind::Mark, "m1").field("x", 1u64));
        sink.flush();
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("telemetry_start"));
        assert!(lines[0].contains("\"schema\":1"));
        assert!(lines[1].contains("\"name\":\"m1\""));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn write_errors_are_counted_and_taken_once() {
        let before = crate::registry::counter("telemetry.write_errors").get();
        let _ = take_write_error(); // clear any residue from other tests
        let e1 = std::io::Error::new(std::io::ErrorKind::Other, "disk full");
        let e2 = std::io::Error::new(std::io::ErrorKind::Other, "still full");
        note_write_error("jsonl sink /tmp/a.jsonl", &e1);
        note_write_error("jsonl sink /tmp/a.jsonl", &e2);
        assert_eq!(
            crate::registry::counter("telemetry.write_errors").get(),
            before + 2
        );
        // First message wins; take clears the slot.
        let msg = take_write_error().expect("pending error");
        assert!(msg.contains("disk full"), "{msg}");
        assert!(take_write_error().is_none());
    }

    #[test]
    fn poisoned_memory_sink_keeps_recording() {
        // A panic inside a sink consumer must not brick telemetry for the
        // rest of the process: locks recover via PoisonError::into_inner.
        let sink = std::sync::Arc::new(MemorySink::default());
        sink.record(&Event::new(Kind::Mark, "before-poison"));
        let poisoner = std::sync::Arc::clone(&sink);
        let _ = std::thread::spawn(move || {
            let _guard = poisoner.events.lock().unwrap();
            panic!("poison the events mutex");
        })
        .join();
        assert!(sink.events.is_poisoned(), "setup: mutex must be poisoned");
        sink.record(&Event::new(Kind::Mark, "after-poison"));
        let events = sink.events.lock().unwrap_or_else(|e| e.into_inner());
        let names: Vec<&str> = events.iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, ["before-poison", "after-poison"]);
    }

    #[test]
    fn emit_without_sinks_is_a_noop() {
        let _guard = crate::test_lock();
        shutdown();
        assert!(!enabled());
        // Must not panic or touch sink state.
        emit(Event::new(Kind::Mark, "nobody-listening"));
    }
}
