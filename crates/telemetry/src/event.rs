//! The structured event type and its versioned JSONL encoding.
//!
//! Every event serializes to exactly one line of JSON with a fixed set of
//! top-level keys — `v` (schema version), `ts_ns` (monotonic nanoseconds
//! since telemetry start), `kind`, `name`, `thread`, and a free-form
//! `fields` object — so downstream tooling can parse a stream without
//! knowing every event name in advance. The schema version only changes
//! when the meaning of an existing key changes; adding event names or
//! field keys is a compatible extension.

use std::fmt::Write as _;
use std::sync::OnceLock;
use std::time::Instant;

/// Version stamped into every event line (`"v"` key).
pub const SCHEMA_VERSION: u64 = 1;

/// Monotonic nanoseconds since the first telemetry timestamp was taken in
/// this process. Monotonic (not wall-clock) so span math never goes
/// negative across NTP adjustments.
pub fn now_ns() -> u64 {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// A typed field value.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// Unsigned integer (counters, durations in ns).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (losses, rates; non-finite serializes as `null`).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Event category; determines how sinks render the event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Kind {
    /// A completed timed region (`dur_ns` and `path` fields present).
    Span,
    /// A point-in-time metrics snapshot.
    Metrics,
    /// A noteworthy-but-healthy occurrence (checkpoint saved, run
    /// resumed, training diverged).
    Mark,
    /// Something went wrong but the run continues.
    Warn,
}

impl Kind {
    /// The string written to the `kind` key.
    pub fn as_str(self) -> &'static str {
        match self {
            Kind::Span => "span",
            Kind::Metrics => "metrics",
            Kind::Mark => "mark",
            Kind::Warn => "warn",
        }
    }
}

/// One structured event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Monotonic timestamp ([`now_ns`]).
    pub ts_ns: u64,
    /// Category.
    pub kind: Kind,
    /// Event name (span name, warning code, mark name).
    pub name: String,
    /// Thread the event was emitted from (thread name or "?").
    pub thread: String,
    /// Free-form payload.
    pub fields: Vec<(String, Value)>,
}

impl Event {
    /// A new event stamped with the current time and thread.
    pub fn new(kind: Kind, name: impl Into<String>) -> Self {
        Event {
            ts_ns: now_ns(),
            kind,
            name: name.into(),
            thread: std::thread::current().name().unwrap_or("?").to_string(),
            fields: Vec::new(),
        }
    }

    /// Attach a field (builder style).
    pub fn field(mut self, key: impl Into<String>, value: impl Into<Value>) -> Self {
        self.fields.push((key.into(), value.into()));
        self
    }

    /// Serialize to one JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut s = String::with_capacity(96 + 24 * self.fields.len());
        s.push_str("{\"v\":");
        let _ = write!(s, "{SCHEMA_VERSION}");
        let _ = write!(s, ",\"ts_ns\":{}", self.ts_ns);
        s.push_str(",\"kind\":\"");
        s.push_str(self.kind.as_str());
        s.push_str("\",\"name\":");
        write_json_str(&mut s, &self.name);
        s.push_str(",\"thread\":");
        write_json_str(&mut s, &self.thread);
        s.push_str(",\"fields\":{");
        for (i, (k, v)) in self.fields.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            write_json_str(&mut s, k);
            s.push(':');
            write_json_value(&mut s, v);
        }
        s.push_str("}}");
        s
    }
}

/// Append a JSON string literal (with escaping) to `out`.
pub fn write_json_str(out: &mut String, v: &str) {
    out.push('"');
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_json_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::I64(x) => {
            let _ = write!(out, "{x}");
        }
        Value::F64(x) => {
            if x.is_finite() {
                let _ = write!(out, "{x}");
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_json_str(out, s),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_serializes_with_fixed_top_level_keys() {
        let e = Event::new(Kind::Mark, "checkpoint_saved")
            .field("epoch", 100u64)
            .field("bytes", 4096u64)
            .field("ok", true);
        let line = e.to_json_line();
        assert!(line.starts_with("{\"v\":1,\"ts_ns\":"));
        assert!(line.contains("\"kind\":\"mark\""));
        assert!(line.contains("\"name\":\"checkpoint_saved\""));
        assert!(line.contains("\"fields\":{\"epoch\":100,\"bytes\":4096,\"ok\":true}"));
        assert!(!line.contains('\n'));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let e = Event::new(Kind::Warn, "nan_loss").field("loss", f64::NAN);
        assert!(e.to_json_line().contains("\"loss\":null"));
    }

    #[test]
    fn strings_escape_control_and_quote_chars() {
        let e = Event::new(Kind::Warn, "w").field("msg", "a\"b\\c\nd\u{1}");
        let line = e.to_json_line();
        assert!(line.contains(r#""msg":"a\"b\\c\nd\u0001""#), "{line}");
    }

    #[test]
    fn now_ns_is_monotone() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }
}
