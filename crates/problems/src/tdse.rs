//! Time-dependent Schrödinger problem definitions and their reference
//! solutions.

use crate::potential::Potential;
use crate::wavepacket::GaussianPacket;
use qpinn_dual::Complex64;
use qpinn_solvers::{crank_nicolson_tdse, split_step_evolve, Field1d, Grid1d, Nonlinearity};

/// Spatial boundary condition of a problem.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Boundary {
    /// Periodic in `x` (the PINN enforces this exactly via embedding).
    Periodic,
    /// Homogeneous Dirichlet (`ψ = 0` at both edges).
    Dirichlet,
}

/// A 1D TDSE benchmark: `i ψ_t = −½ψ_xx + V(x)ψ` on
/// `[x0, x1] × [0, t_end]` with a Gaussian packet initial condition.
#[derive(Clone, Debug)]
pub struct TdseProblem {
    /// Identifier used in reports.
    pub name: String,
    /// Left spatial edge.
    pub x0: f64,
    /// Right spatial edge.
    pub x1: f64,
    /// Final time.
    pub t_end: f64,
    /// Boundary condition.
    pub boundary: Boundary,
    /// External potential.
    pub potential: Potential,
    /// Initial condition.
    pub packet: GaussianPacket,
}

impl TdseProblem {
    /// Free packet spreading in a periodic box — the quickstart problem.
    pub fn free_packet() -> Self {
        TdseProblem {
            name: "free-packet".into(),
            x0: -6.0,
            x1: 6.0,
            t_end: 1.0,
            boundary: Boundary::Periodic,
            potential: Potential::Free,
            packet: GaussianPacket::at_rest(0.7),
        }
    }

    /// A coherent state sloshing in a harmonic trap.
    pub fn harmonic_packet() -> Self {
        TdseProblem {
            name: "harmonic-packet".into(),
            x0: -6.0,
            x1: 6.0,
            t_end: 2.0,
            boundary: Boundary::Periodic,
            potential: Potential::Harmonic { omega: 2.0 },
            packet: GaussianPacket {
                x0: 1.0,
                sigma: 0.5,
                k0: 0.0,
            },
        }
    }

    /// A gently sloshing packet in a soft trap (ω = 1) over one time unit —
    /// the preset used by the inverse-problem benchmark, where the forward
    /// problem must converge fast enough for the potential parameter to be
    /// identifiable.
    pub fn mild_harmonic() -> Self {
        TdseProblem {
            name: "mild-harmonic".into(),
            x0: -6.0,
            x1: 6.0,
            t_end: 1.0,
            boundary: Boundary::Periodic,
            potential: Potential::Harmonic { omega: 1.0 },
            packet: GaussianPacket {
                x0: 0.8,
                sigma: 0.7,
                k0: 0.0,
            },
        }
    }

    /// A moving packet scattering off a smooth barrier (partial
    /// transmission/reflection).
    pub fn barrier_scattering() -> Self {
        TdseProblem {
            name: "barrier-scattering".into(),
            x0: -10.0,
            x1: 10.0,
            t_end: 1.5,
            boundary: Boundary::Periodic,
            potential: Potential::Barrier {
                height: 2.0,
                width: 0.8,
            },
            packet: GaussianPacket {
                x0: -4.0,
                sigma: 0.8,
                k0: 2.0,
            },
        }
    }

    /// Domain length.
    pub fn length(&self) -> f64 {
        self.x1 - self.x0
    }

    /// The initial wavefunction.
    pub fn initial(&self, x: f64) -> Complex64 {
        self.packet.eval(x)
    }

    /// The closed-form solution, when one exists (free space only).
    pub fn analytic(&self, x: f64, t: f64) -> Option<Complex64> {
        match self.potential {
            Potential::Free => Some(self.packet.free_evolution(x, t)),
            _ => None,
        }
    }

    /// High-fidelity reference solution: split-step Fourier on periodic
    /// domains (`nx` must be a power of two there), Crank–Nicolson on
    /// Dirichlet domains. `nt` propagation steps, storing ≈ `n_slices`
    /// slices.
    pub fn reference(&self, nx: usize, nt: usize, n_slices: usize) -> Field1d {
        let store_every = (nt / n_slices.max(1)).max(1);
        match self.boundary {
            Boundary::Periodic => {
                let grid = Grid1d::periodic(self.x0, self.x1, nx);
                let psi0: Vec<Complex64> =
                    grid.points().iter().map(|&x| self.initial(x)).collect();
                let v = self.potential;
                split_step_evolve(
                    &grid,
                    &move |x| v.eval(x),
                    Nonlinearity::None,
                    &psi0,
                    self.t_end,
                    nt,
                    store_every,
                )
            }
            Boundary::Dirichlet => {
                let grid = Grid1d::dirichlet(self.x0, self.x1, nx + 1);
                let psi0: Vec<Complex64> =
                    grid.points().iter().map(|&x| self.initial(x)).collect();
                let v = self.potential;
                crank_nicolson_tdse(
                    &grid,
                    &move |x| v.eval(x),
                    &psi0,
                    self.t_end,
                    nt,
                    store_every,
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_well_formed() {
        for p in [
            TdseProblem::free_packet(),
            TdseProblem::harmonic_packet(),
            TdseProblem::barrier_scattering(),
        ] {
            assert!(p.x1 > p.x0 && p.t_end > 0.0);
            // initial condition effectively vanishes at the edges so the
            // periodic wrap is consistent
            assert!(p.initial(p.x0).abs() < 1e-4, "{}", p.name);
            assert!(p.initial(p.x1).abs() < 1e-4, "{}", p.name);
        }
    }

    #[test]
    fn reference_conserves_norm() {
        let p = TdseProblem::harmonic_packet();
        let f = p.reference(128, 400, 5);
        let n0 = f.norm_at(0);
        for k in 0..f.n_slices() {
            assert!((f.norm_at(k) - n0).abs() < 1e-8 * n0);
        }
    }

    #[test]
    fn free_reference_matches_analytic() {
        let p = TdseProblem::free_packet();
        let f = p.reference(256, 500, 5);
        let t = *f.times().last().unwrap();
        for x in [-2.0, -0.5, 0.0, 1.0, 2.5] {
            let got = f.sample(x, t);
            let want = p.analytic(x, t).unwrap();
            assert!(
                (got - want).abs() < 1e-3,
                "at {x}: {got:?} vs {want:?}"
            );
        }
    }

    #[test]
    fn barrier_splits_the_packet() {
        // After scattering, significant density on both sides of the
        // barrier.
        let p = TdseProblem::barrier_scattering();
        let f = p.reference(256, 600, 3);
        let last = f.n_slices() - 1;
        let grid = *f.grid();
        let xs = grid.points();
        let dens: Vec<f64> = f.slice(last).iter().map(|c| c.norm_sqr()).collect();
        let left: f64 = xs
            .iter()
            .zip(&dens)
            .filter(|(x, _)| **x < 0.0)
            .map(|(_, d)| d)
            .sum();
        let right: f64 = xs
            .iter()
            .zip(&dens)
            .filter(|(x, _)| **x >= 0.0)
            .map(|(_, d)| d)
            .sum();
        let total = left + right;
        assert!(left / total > 0.05, "reflection {}", left / total);
        assert!(right / total > 0.05, "transmission {}", right / total);
    }
}
