//! Two-dimensional time-dependent Schrödinger benchmarks
//! `i ψ_t = −½(ψ_xx + ψ_yy) + V(x, y)ψ` on a doubly periodic rectangle —
//! the "multi-dimensional unsteady field problem" extension.

use qpinn_dual::Complex64;
use qpinn_solvers::{split_step_evolve_2d, Field2d, Grid1d};

/// A separable 2D potential.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Potential2d {
    /// Free space.
    Free,
    /// Isotropic harmonic trap `V = ½ω²(x² + y²)`.
    Harmonic {
        /// Trap frequency.
        omega: f64,
    },
}

impl Potential2d {
    /// Evaluate `V(x, y)`.
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        match *self {
            Potential2d::Free => 0.0,
            Potential2d::Harmonic { omega } => 0.5 * omega * omega * (x * x + y * y),
        }
    }
}

/// A 2D TDSE benchmark with a Gaussian initial condition.
#[derive(Clone, Debug)]
pub struct Tdse2dProblem {
    /// Identifier used in reports.
    pub name: String,
    /// x-interval.
    pub x: (f64, f64),
    /// y-interval.
    pub y: (f64, f64),
    /// Final time.
    pub t_end: f64,
    /// External potential.
    pub potential: Potential2d,
    /// Initial Gaussian: centre and width.
    pub center: (f64, f64),
    /// Initial width σ.
    pub sigma: f64,
}

impl Tdse2dProblem {
    /// A packet spreading in free 2D space.
    pub fn free_packet_2d() -> Self {
        Tdse2dProblem {
            name: "free-packet-2d".into(),
            x: (-5.0, 5.0),
            y: (-5.0, 5.0),
            t_end: 0.6,
            potential: Potential2d::Free,
            center: (0.0, 0.0),
            sigma: 0.6,
        }
    }

    /// A displaced packet orbiting in an isotropic trap.
    pub fn harmonic_packet_2d() -> Self {
        Tdse2dProblem {
            name: "harmonic-packet-2d".into(),
            x: (-5.0, 5.0),
            y: (-5.0, 5.0),
            t_end: 1.0,
            potential: Potential2d::Harmonic { omega: 2.0 },
            center: (1.0, 0.0),
            sigma: 0.5,
        }
    }

    /// Domain lengths `(Lx, Ly)`.
    pub fn lengths(&self) -> (f64, f64) {
        (self.x.1 - self.x.0, self.y.1 - self.y.0)
    }

    /// The normalized initial wavefunction
    /// `(2πσ²)^{-1/2} exp(−r²/(4σ²))`.
    pub fn initial(&self, x: f64, y: f64) -> Complex64 {
        let norm = 1.0 / (2.0 * std::f64::consts::PI * self.sigma * self.sigma).sqrt();
        let r2 = (x - self.center.0).powi(2) + (y - self.center.1).powi(2);
        Complex64::new(norm * (-r2 / (4.0 * self.sigma * self.sigma)).exp(), 0.0)
    }

    /// Spectral reference solution on an `nx × ny` grid (powers of two).
    pub fn reference(&self, nx: usize, ny: usize, nt: usize, n_slices: usize) -> Field2d {
        let gx = Grid1d::periodic(self.x.0, self.x.1, nx);
        let gy = Grid1d::periodic(self.y.0, self.y.1, ny);
        let psi0: Vec<Complex64> = gx
            .points()
            .iter()
            .flat_map(|&x| {
                gy.points()
                    .iter()
                    .map(|&y| self.initial(x, y))
                    .collect::<Vec<_>>()
            })
            .collect();
        let store_every = (nt / n_slices.max(1)).max(1);
        let v = self.potential;
        split_step_evolve_2d(
            &gx,
            &gy,
            &move |x, y| v.eval(x, y),
            &psi0,
            self.t_end,
            nt,
            store_every,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_condition_is_normalized() {
        let p = Tdse2dProblem::free_packet_2d();
        let n = 128;
        let (lx, ly) = p.lengths();
        let da = (lx / n as f64) * (ly / n as f64);
        let mut total = 0.0;
        for i in 0..n {
            for j in 0..n {
                let x = p.x.0 + lx * i as f64 / n as f64;
                let y = p.y.0 + ly * j as f64 / n as f64;
                total += p.initial(x, y).norm_sqr() * da;
            }
        }
        assert!((total - 1.0).abs() < 1e-8, "norm {total}");
    }

    #[test]
    fn reference_conserves_norm() {
        let p = Tdse2dProblem::harmonic_packet_2d();
        let f = p.reference(64, 64, 200, 4);
        let n0 = f.norm_at(0);
        for k in 0..f.n_slices() {
            assert!((f.norm_at(k) - n0).abs() < 1e-9 * n0);
        }
    }

    #[test]
    fn free_packet_spreads_isotropically() {
        let p = Tdse2dProblem::free_packet_2d();
        let f = p.reference(64, 64, 200, 4);
        // peak density decreases as the packet spreads
        let peak = |k: usize| {
            f.slice(k)
                .iter()
                .map(|c| c.norm_sqr())
                .fold(0.0f64, f64::max)
        };
        assert!(peak(f.n_slices() - 1) < 0.8 * peak(0));
    }
}
