//! The 1D wave equation `u_tt = c² u_xx` on a periodic interval — the
//! first registered family with a *second-order* time derivative in the
//! residual (exercised directly through the jet `dd` slot) and a
//! derivative-valued initial condition (`u_t(x, 0) = 0`).

use super::{uniform, Condition, CoordDef, CoordKind, Fidelity, MolRef, PdeProblem, RefSolution};
use qpinn_autodiff::jet::Jet;
use qpinn_autodiff::{Graph, Var};
use qpinn_solvers::{laplacian_periodic, mol_rk4, Grid1d};
use std::f64::consts::PI;

const C: f64 = 1.0; // wave speed
const K: f64 = 1.0; // standing-wave wavenumber
const T_END: f64 = 2.0;

struct Wave;

/// `wave` registry entry.
pub(super) fn problem() -> Box<dyn PdeProblem> {
    Box::new(Wave)
}

fn exact(x: f64, t: f64) -> f64 {
    (K * x).sin() * (C * K * t).cos()
}

impl PdeProblem for Wave {
    fn key(&self) -> &'static str {
        "wave"
    }
    fn describe(&self) -> &'static str {
        "1D wave equation, periodic standing wave"
    }
    fn coords(&self) -> Vec<CoordDef> {
        vec![
            CoordDef {
                name: "x",
                lo: 0.0,
                hi: 2.0 * PI,
                kind: CoordKind::Periodic,
            },
            CoordDef {
                name: "t",
                lo: 0.0,
                hi: T_END,
                kind: CoordKind::Time,
            },
        ]
    }
    fn n_outputs(&self) -> usize {
        1
    }
    fn residuals(&self, g: &mut Graph, fields: &[Jet], _points: &[Vec<f64>]) -> Vec<Var> {
        let u = &fields[0];
        // u_tt − c² u_xx
        let c2uxx = g.scale(u.dd[0], C * C);
        vec![g.sub(u.dd[1], c2uxx)]
    }
    fn conditions(&self, n: usize) -> Vec<Condition> {
        let xs = uniform(0.0, 2.0 * PI, n, true);
        let points: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x, 0.0]).collect();
        vec![
            Condition {
                name: "ic",
                deriv: None,
                points: points.clone(),
                targets: xs.iter().map(|&x| vec![exact(x, 0.0)]).collect(),
            },
            // The wave equation needs both u(x,0) and u_t(x,0): the
            // standing wave starts at rest.
            Condition {
                name: "ic-velocity",
                deriv: Some(1),
                points,
                targets: xs.iter().map(|_| vec![0.0]).collect(),
            },
        ]
    }
    fn analytic(&self, point: &[f64]) -> Option<Vec<f64>> {
        Some(vec![exact(point[0], point[1])])
    }
    fn reference(&self, fidelity: Fidelity) -> Box<dyn RefSolution> {
        let (nx, nt, sl) = match fidelity {
            Fidelity::Quick => (256, 800, 40),
            Fidelity::Full => (512, 4000, 80),
        };
        let grid = Grid1d::periodic(0.0, 2.0 * PI, nx);
        let n = grid.n;
        // First-order system (u, w = u_t); the registry exposes u only.
        let mut y0 = vec![0.0; 2 * n];
        for (i, &x) in grid.points().iter().enumerate() {
            y0[i] = exact(x, 0.0);
        }
        let dx = grid.dx();
        let rhs = move |_t: f64, y: &[f64], dy: &mut [f64]| {
            let (u, w) = y.split_at(n);
            let (du, dw) = dy.split_at_mut(n);
            du.copy_from_slice(w);
            laplacian_periodic(u, dx, dw);
            for d in dw.iter_mut() {
                *d *= C * C;
            }
        };
        let field = mol_rk4(&grid, 2, &rhs, &y0, T_END, nt, nt / sl);
        Box::new(MolRef { field, n_out: 1 })
    }
    fn check_method(&self) -> &'static str {
        "standing-wave closed form vs MOL RK4 (first-order system)"
    }
}
