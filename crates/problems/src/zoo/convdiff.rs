//! Convection-diffusion: `u_t + c u_x = ν u_xx` on a periodic interval
//! with a sinusoidal initial profile. The exact solution is a decaying
//! travelling wave `u = e^{−νk²t} sin(k(x − ct))`; the numeric reference
//! is the MOL RK4 stepper, so analytic-vs-numeric agreement is a real
//! two-sided check.

use super::{
    uniform, Condition, CoordDef, CoordKind, Fidelity, MolRef, PdeProblem, RefSolution,
};
use qpinn_autodiff::jet::Jet;
use qpinn_autodiff::{Graph, Var};
use qpinn_solvers::{gradient_periodic, laplacian_periodic, mol_rk4, Grid1d};
use std::f64::consts::PI;

const C: f64 = 1.0; // convection speed
const NU: f64 = 0.1; // diffusivity
const K: f64 = 1.0; // wavenumber of the initial profile
const T_END: f64 = 2.0;

struct ConvDiff;

/// `convection-diffusion` registry entry.
pub(super) fn problem() -> Box<dyn PdeProblem> {
    Box::new(ConvDiff)
}

fn exact(x: f64, t: f64) -> f64 {
    (-NU * K * K * t).exp() * (K * (x - C * t)).sin()
}

impl PdeProblem for ConvDiff {
    fn key(&self) -> &'static str {
        "convection-diffusion"
    }
    fn describe(&self) -> &'static str {
        "periodic convection-diffusion, decaying travelling wave"
    }
    fn coords(&self) -> Vec<CoordDef> {
        vec![
            CoordDef {
                name: "x",
                lo: 0.0,
                hi: 2.0 * PI,
                kind: CoordKind::Periodic,
            },
            CoordDef {
                name: "t",
                lo: 0.0,
                hi: T_END,
                kind: CoordKind::Time,
            },
        ]
    }
    fn n_outputs(&self) -> usize {
        1
    }
    fn residuals(&self, g: &mut Graph, fields: &[Jet], points: &[Vec<f64>]) -> Vec<Var> {
        let _ = points; // coefficients are constant for this family
        let u = &fields[0];
        // u_t + c u_x − ν u_xx
        let cu_x = g.scale(u.d[0], C);
        let mut r = g.add(u.d[1], cu_x);
        let nu_xx = g.scale(u.dd[0], NU);
        r = g.sub(r, nu_xx);
        vec![r]
    }
    fn conditions(&self, n: usize) -> Vec<Condition> {
        let xs = uniform(0.0, 2.0 * PI, n, true);
        vec![Condition {
            name: "ic",
            deriv: None,
            points: xs.iter().map(|&x| vec![x, 0.0]).collect(),
            targets: xs.iter().map(|&x| vec![exact(x, 0.0)]).collect(),
        }]
    }
    fn analytic(&self, point: &[f64]) -> Option<Vec<f64>> {
        Some(vec![exact(point[0], point[1])])
    }
    fn reference(&self, fidelity: Fidelity) -> Box<dyn RefSolution> {
        let (nx, nt, sl) = match fidelity {
            Fidelity::Quick => (128, 400, 40),
            Fidelity::Full => (256, 2000, 80),
        };
        let grid = Grid1d::periodic(0.0, 2.0 * PI, nx);
        let y0: Vec<f64> = grid.points().iter().map(|&x| exact(x, 0.0)).collect();
        let dx = grid.dx();
        let rhs = move |_t: f64, y: &[f64], dy: &mut [f64]| {
            let mut lap = vec![0.0; y.len()];
            laplacian_periodic(y, dx, &mut lap);
            gradient_periodic(y, dx, dy);
            for i in 0..y.len() {
                dy[i] = NU * lap[i] - C * dy[i];
            }
        };
        let field = mol_rk4(&grid, 1, &rhs, &y0, T_END, nt, nt / sl);
        Box::new(MolRef { field, n_out: 1 })
    }
    fn check_method(&self) -> &'static str {
        "travelling-wave closed form vs MOL RK4"
    }
}
