//! Gray-Scott reaction-diffusion — the coupled 2-component Turing system
//! from the registry's reaction-diffusion arm:
//!
//! ```text
//! u_t = Dᵤ u_xx − u v² + F (1 − u)
//! v_t = Dᵥ v_xx + u v² − (F + κ) v
//! ```
//!
//! This is the first registered problem with a genuinely vector-valued
//! surrogate (`n_outputs = 2`), exercising multi-component `FieldNet`
//! outputs end-to-end through trainer, persist, and serve. There is no
//! closed form; the MOL RK4 reference is cross-checked against a
//! Strang-split *spectral* integrator — a fully independent space and
//! time discretization.

use super::{uniform, Condition, CoordDef, CoordKind, Fidelity, MolRef, PdeProblem, RefSolution};
use qpinn_autodiff::jet::Jet;
use qpinn_autodiff::{Graph, Var};
use qpinn_solvers::{laplacian_periodic, mol_rk4, reaction_diffusion_spectral, Grid1d};
use std::f64::consts::PI;

const DU: f64 = 0.1; // u diffusivity
const DV: f64 = 0.05; // v diffusivity
const F: f64 = 0.04; // feed rate
const KAPPA: f64 = 0.06; // kill rate
const T_END: f64 = 4.0;

struct GrayScott;

/// `gray-scott` registry entry.
pub(super) fn problem() -> Box<dyn PdeProblem> {
    Box::new(GrayScott)
}

/// A localized activator seed on the homogeneous `(u, v) = (1, 0)` state.
fn initial(x: f64) -> (f64, f64) {
    let bump = (-((x - PI) / 0.5).powi(2)).exp();
    (1.0 - 0.5 * bump, 0.25 * bump)
}

fn react(p: &[f64], out: &mut [f64]) {
    let (u, v) = (p[0], p[1]);
    let uvv = u * v * v;
    out[0] = -uvv + F * (1.0 - u);
    out[1] = uvv - (F + KAPPA) * v;
}

fn solve(nx: usize, nt: usize, sl: usize) -> qpinn_solvers::FieldR1d {
    let grid = Grid1d::periodic(0.0, 2.0 * PI, nx);
    let n = grid.n;
    let mut y0 = vec![0.0; 2 * n];
    for (i, &x) in grid.points().iter().enumerate() {
        let (u, v) = initial(x);
        y0[i] = u;
        y0[n + i] = v;
    }
    let dx = grid.dx();
    let rhs = move |_t: f64, y: &[f64], dy: &mut [f64]| {
        let (u, v) = y.split_at(n);
        let (ou, ov) = dy.split_at_mut(n);
        laplacian_periodic(u, dx, ou);
        laplacian_periodic(v, dx, ov);
        let mut p = [0.0; 2];
        let mut r = [0.0; 2];
        for i in 0..n {
            p[0] = u[i];
            p[1] = v[i];
            react(&p, &mut r);
            ou[i] = DU * ou[i] + r[0];
            ov[i] = DV * ov[i] + r[1];
        }
    };
    mol_rk4(&grid, 2, &rhs, &y0, T_END, nt, nt / sl)
}

impl PdeProblem for GrayScott {
    fn key(&self) -> &'static str {
        "gray-scott"
    }
    fn describe(&self) -> &'static str {
        "coupled Gray-Scott reaction-diffusion (2-component Turing system)"
    }
    fn coords(&self) -> Vec<CoordDef> {
        vec![
            CoordDef {
                name: "x",
                lo: 0.0,
                hi: 2.0 * PI,
                kind: CoordKind::Periodic,
            },
            CoordDef {
                name: "t",
                lo: 0.0,
                hi: T_END,
                kind: CoordKind::Time,
            },
        ]
    }
    fn n_outputs(&self) -> usize {
        2
    }
    fn residuals(&self, g: &mut Graph, fields: &[Jet], _points: &[Vec<f64>]) -> Vec<Var> {
        let (u, v) = (&fields[0], &fields[1]);
        let v2 = g.square(v.v);
        let uvv = g.mul(u.v, v2);
        // u_t − Dᵤ u_xx + uv² − F(1 − u)  =  u_t − Dᵤ u_xx + uv² + F·u − F
        let du_xx = g.scale(u.dd[0], DU);
        let mut ru = g.sub(u.d[1], du_xx);
        ru = g.add(ru, uvv);
        let fu = g.scale(u.v, F);
        ru = g.add(ru, fu);
        ru = g.add_scalar(ru, -F);
        // v_t − Dᵥ v_xx − uv² + (F + κ)v
        let dv_xx = g.scale(v.dd[0], DV);
        let mut rv = g.sub(v.d[1], dv_xx);
        rv = g.sub(rv, uvv);
        let kv = g.scale(v.v, F + KAPPA);
        rv = g.add(rv, kv);
        vec![ru, rv]
    }
    fn conditions(&self, n: usize) -> Vec<Condition> {
        let xs = uniform(0.0, 2.0 * PI, n, true);
        vec![Condition {
            name: "ic",
            deriv: None,
            points: xs.iter().map(|&x| vec![x, 0.0]).collect(),
            targets: xs
                .iter()
                .map(|&x| {
                    let (u, v) = initial(x);
                    vec![u, v]
                })
                .collect(),
        }]
    }
    fn analytic(&self, _point: &[f64]) -> Option<Vec<f64>> {
        None
    }
    fn reference(&self, fidelity: Fidelity) -> Box<dyn RefSolution> {
        let (nx, nt, sl) = match fidelity {
            Fidelity::Quick => (128, 800, 40),
            Fidelity::Full => (256, 4000, 80),
        };
        Box::new(MolRef {
            field: solve(nx, nt, sl),
            n_out: 2,
        })
    }
    fn independent_check(&self) -> Option<Box<dyn RefSolution>> {
        let grid = Grid1d::periodic(0.0, 2.0 * PI, 128);
        let n = grid.n;
        let mut y0 = vec![0.0; 2 * n];
        for (i, &x) in grid.points().iter().enumerate() {
            let (u, v) = initial(x);
            y0[i] = u;
            y0[n + i] = v;
        }
        let field =
            reaction_diffusion_spectral(&grid, &[DU, DV], &react, &y0, T_END, 800, 20);
        Some(Box::new(MolRef { field, n_out: 2 }))
    }
    fn check_method(&self) -> &'static str {
        "MOL RK4 vs Strang-split spectral integrator"
    }
}
