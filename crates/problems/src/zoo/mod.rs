//! The problem registry: PDE families as *data*, not code.
//!
//! A [`PdeProblem`] bundles everything the generic trainer, the bench
//! matrix, and the conformance harness need to know about one PDE family:
//! the residual operator (built directly on the autodiff tape from
//! coordinate [`Jet`]s), the domain and its coordinate kinds, IC/BC
//! condition sets, an optional closed-form solution, and a
//! reference-solver factory. Families register under a stable string key
//! in [`lookup`]/[`keys`] — mirroring the snapshot-backed model registry
//! in `qpinn-serve` — so adding a scenario means registering one file, and
//! every registered scenario is automatically swept by the cross-check
//! harness in `tests/problem_registry.rs` and `tests/solver_crosscheck.rs`.

use qpinn_autodiff::jet::Jet;
use qpinn_autodiff::{Graph, Var};
use qpinn_tensor::Tensor;

mod convdiff;
mod gray_scott;
mod helmholtz;
mod klein_gordon;
mod ported;
mod wave;

/// How the surrogate should treat one input coordinate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoordKind {
    /// Spatial coordinate with periodic identification of the edges.
    Periodic,
    /// Spatial coordinate on a plain bounded interval.
    Bounded,
    /// Time: bounded, initial data at the lower edge.
    Time,
}

/// One input coordinate of a problem.
#[derive(Clone, Debug)]
pub struct CoordDef {
    /// Short name (`"x"`, `"y"`, `"t"`).
    pub name: &'static str,
    /// Lower edge.
    pub lo: f64,
    /// Upper edge.
    pub hi: f64,
    /// Coordinate kind.
    pub kind: CoordKind,
}

impl CoordDef {
    /// Interval length.
    pub fn span(&self) -> f64 {
        self.hi - self.lo
    }
}

/// A sampled initial/boundary condition set with exact targets.
#[derive(Clone, Debug)]
pub struct Condition {
    /// Label used in loss telemetry and harness diagnostics (`"ic"`,
    /// `"bc"`, `"ic-velocity"`, …).
    pub name: &'static str,
    /// `None`: the targets constrain field values. `Some(c)`: they
    /// constrain the first derivative along coordinate `c` (e.g. the
    /// initial velocity of a wave problem).
    pub deriv: Option<usize>,
    /// Coordinate tuples where the condition applies.
    pub points: Vec<Vec<f64>>,
    /// Target values, one `n_outputs`-vector per point.
    pub targets: Vec<Vec<f64>>,
}

/// Reference-solution resolution: tests use `Quick`, benches `Full`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fidelity {
    /// Coarse but fast — for smoke tests and CI.
    Quick,
    /// Publication-grade resolution.
    Full,
}

/// A dense reference solution that can be sampled anywhere in the domain.
pub trait RefSolution: Send + Sync {
    /// All output components at one coordinate tuple.
    fn sample(&self, point: &[f64]) -> Vec<f64>;
    /// Node coordinates per axis at which [`RefSolution::sample`] is
    /// exact (solver grid nodes / stored time stamps). The conformance
    /// harness differentiates the reference *node-to-node* so bilinear
    /// interpolation error never pollutes the finite differences.
    fn grids(&self) -> Vec<Vec<f64>>;
}

/// One registered PDE family.
pub trait PdeProblem: Send + Sync {
    /// Stable registry key (also the `--problem` flag value).
    fn key(&self) -> &'static str;
    /// One-line human description.
    fn describe(&self) -> &'static str;
    /// Input coordinates, in column order.
    fn coords(&self) -> Vec<CoordDef>;
    /// Number of output field components.
    fn n_outputs(&self) -> usize;
    /// Build the residual columns on the tape. `fields` holds one [`Jet`]
    /// per output component (value + per-coordinate first/second
    /// derivatives at the collocation `points`); the returned `Var`s are
    /// `[n, 1]` residual columns to be driven to zero.
    fn residuals(&self, g: &mut Graph, fields: &[Jet], points: &[Vec<f64>]) -> Vec<Var>;
    /// IC/BC condition sets, each sampled at roughly `n` points.
    fn conditions(&self, n: usize) -> Vec<Condition>;
    /// Closed-form solution at a point, when one exists.
    fn analytic(&self, point: &[f64]) -> Option<Vec<f64>>;
    /// The primary reference solution (what training error is scored
    /// against).
    fn reference(&self, fidelity: Fidelity) -> Box<dyn RefSolution>;
    /// A second, methodologically independent numeric solution when one
    /// is available (different discretization from [`PdeProblem::reference`]).
    /// Every problem must provide [`PdeProblem::analytic`] or this — the
    /// harness enforces it.
    fn independent_check(&self) -> Option<Box<dyn RefSolution>> {
        None
    }
    /// Human-readable description of the cross-check method, for the
    /// problem-zoo docs and the `qpinn-problems-v1` listing.
    fn check_method(&self) -> &'static str;
    /// Absolute tolerance for the residual-of-reference finite-difference
    /// check (reference solutions carry discretization error; the check
    /// exists to catch sign/term mistakes, which show up at `O(1)`).
    fn residual_tol(&self) -> f64 {
        0.05
    }
}

/// Error returned by [`lookup`] for an unregistered key.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UnknownProblem {
    /// The key that failed to resolve.
    pub key: String,
}

impl std::fmt::Display for UnknownProblem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "unknown problem `{}` (registered: {})",
            self.key,
            keys().join(", ")
        )
    }
}

impl std::error::Error for UnknownProblem {}

type Factory = fn() -> Box<dyn PdeProblem>;

/// The registration table. Keep sorted by key; [`keys`] asserts it.
const TABLE: &[(&str, Factory)] = &[
    ("convection-diffusion", convdiff::problem),
    ("eigen-harmonic", ported::eigen_harmonic),
    ("gray-scott", gray_scott::problem),
    ("helmholtz", helmholtz::problem),
    ("klein-gordon", klein_gordon::problem),
    ("nls-soliton", ported::nls_soliton),
    ("tdse-free", ported::tdse_free),
    ("tdse-harmonic", ported::tdse_harmonic),
    ("tdse2d-free", ported::tdse2d_free),
    ("wave", wave::problem),
];

/// All registered keys, sorted and stable across calls.
pub fn keys() -> Vec<&'static str> {
    let ks: Vec<&'static str> = TABLE.iter().map(|(k, _)| *k).collect();
    debug_assert!(ks.windows(2).all(|w| w[0] < w[1]), "TABLE must stay sorted");
    ks
}

/// Resolve a key to a boxed problem definition. Unknown keys are an
/// error, never a panic.
pub fn lookup(key: &str) -> Result<Box<dyn PdeProblem>, UnknownProblem> {
    TABLE
        .iter()
        .find(|(k, _)| *k == key)
        .map(|(_, f)| f())
        .ok_or_else(|| UnknownProblem {
            key: key.to_string(),
        })
}

// ---------------------------------------------------------------------------
// Shared helpers for family implementations.

/// A constant `[n, 1]` tape column of `f(point)` over `points`.
pub(crate) fn point_column(
    g: &mut Graph,
    points: &[Vec<f64>],
    f: impl Fn(&[f64]) -> f64,
) -> Var {
    let col: Vec<f64> = points.iter().map(|p| f(p)).collect();
    g.constant(Tensor::column(&col))
}

/// `n` uniformly spaced values on `[lo, hi]`; periodic coordinates omit
/// the duplicated right edge.
pub(crate) fn uniform(lo: f64, hi: f64, n: usize, periodic: bool) -> Vec<f64> {
    let denom = if periodic { n } else { n - 1 } as f64;
    (0..n).map(|i| lo + (hi - lo) * i as f64 / denom).collect()
}

/// Reference backed by a closed-form expression, sampled exactly
/// everywhere; `grids` advertises a uniform evaluation lattice.
pub(crate) struct AnalyticRef<F: Fn(&[f64]) -> Vec<f64> + Send + Sync> {
    pub f: F,
    pub grids: Vec<Vec<f64>>,
}

impl<F: Fn(&[f64]) -> Vec<f64> + Send + Sync> RefSolution for AnalyticRef<F> {
    fn sample(&self, point: &[f64]) -> Vec<f64> {
        (self.f)(point)
    }
    fn grids(&self) -> Vec<Vec<f64>> {
        self.grids.clone()
    }
}

/// Reference backed by a real multi-component MOL field; exposes the
/// first `n_out` components (wave-type systems integrate `(u, u_t)` but
/// expose only `u`).
pub(crate) struct MolRef {
    pub field: qpinn_solvers::FieldR1d,
    pub n_out: usize,
}

impl RefSolution for MolRef {
    fn sample(&self, point: &[f64]) -> Vec<f64> {
        let mut v = self.field.sample(point[0], point[1]);
        v.truncate(self.n_out);
        v
    }
    fn grids(&self) -> Vec<Vec<f64>> {
        vec![self.field.grid().points(), self.field.times().to_vec()]
    }
}

/// Reference backed by a complex 1D field, exposed as `(Re, Im)`.
pub(crate) struct ComplexFieldRef {
    pub field: qpinn_solvers::Field1d,
}

impl RefSolution for ComplexFieldRef {
    fn sample(&self, point: &[f64]) -> Vec<f64> {
        let c = self.field.sample(point[0], point[1]);
        vec![c.re, c.im]
    }
    fn grids(&self) -> Vec<Vec<f64>> {
        vec![self.field.grid().points(), self.field.times().to_vec()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_resolves_every_key() {
        for k in keys() {
            let p = lookup(k).unwrap();
            assert_eq!(p.key(), k);
            assert!(p.n_outputs() >= 1);
            assert!(!p.coords().is_empty());
        }
    }

    #[test]
    fn unknown_key_is_an_error_with_listing() {
        let e = match lookup("no-such-pde") {
            Ok(_) => panic!("bogus key resolved"),
            Err(e) => e,
        };
        assert_eq!(e.key, "no-such-pde");
        assert!(e.to_string().contains("helmholtz"));
    }

    #[test]
    fn keys_are_sorted_and_unique() {
        let ks = keys();
        assert!(ks.windows(2).all(|w| w[0] < w[1]), "{ks:?}");
        assert!(ks.len() >= 9, "registry shrank: {ks:?}");
    }
}
