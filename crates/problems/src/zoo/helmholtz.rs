//! The 2D Helmholtz boundary-value problem
//! `u_xx + u_yy + k²u = f(x, y)` on the unit square with homogeneous
//! Dirichlet boundaries and the QCPINN manufactured solution
//! `u* = sin(a₁πx) sin(a₂πy)`. The first registered problem with no time
//! axis; the independent numeric check is the 5-point FD dense-LU solver
//! in `qpinn-solvers::elliptic`.

use super::{
    point_column, uniform, AnalyticRef, Condition, CoordDef, CoordKind, Fidelity, PdeProblem,
    RefSolution,
};
use qpinn_autodiff::jet::Jet;
use qpinn_autodiff::{Graph, Var};
use qpinn_solvers::helmholtz_fd_solve;
use std::f64::consts::PI;

const K: f64 = 1.0; // Helmholtz wavenumber
const A1: f64 = 1.0; // x mode number
const A2: f64 = 4.0; // y mode number (QCPINN uses (1, 4))

struct Helmholtz;

/// `helmholtz` registry entry.
pub(super) fn problem() -> Box<dyn PdeProblem> {
    Box::new(Helmholtz)
}

fn exact(x: f64, y: f64) -> f64 {
    (A1 * PI * x).sin() * (A2 * PI * y).sin()
}

fn forcing(x: f64, y: f64) -> f64 {
    (K * K - PI * PI * (A1 * A1 + A2 * A2)) * exact(x, y)
}

impl PdeProblem for Helmholtz {
    fn key(&self) -> &'static str {
        "helmholtz"
    }
    fn describe(&self) -> &'static str {
        "2D Helmholtz BVP, manufactured sine solution (QCPINN modes 1×4)"
    }
    fn coords(&self) -> Vec<CoordDef> {
        vec![
            CoordDef {
                name: "x",
                lo: 0.0,
                hi: 1.0,
                kind: CoordKind::Bounded,
            },
            CoordDef {
                name: "y",
                lo: 0.0,
                hi: 1.0,
                kind: CoordKind::Bounded,
            },
        ]
    }
    fn n_outputs(&self) -> usize {
        1
    }
    fn residuals(&self, g: &mut Graph, fields: &[Jet], points: &[Vec<f64>]) -> Vec<Var> {
        let u = &fields[0];
        let f_col = point_column(g, points, |p| forcing(p[0], p[1]));
        // u_xx + u_yy + k²u − f
        let mut r = g.add(u.dd[0], u.dd[1]);
        let ku = g.scale(u.v, K * K);
        r = g.add(r, ku);
        vec![g.sub(r, f_col)]
    }
    fn conditions(&self, n: usize) -> Vec<Condition> {
        // u = 0 on all four edges, n/4 points per edge.
        let m = (n / 4).max(2);
        let s = uniform(0.0, 1.0, m, false);
        let mut points = Vec::with_capacity(4 * m);
        for &v in &s {
            points.push(vec![v, 0.0]);
            points.push(vec![v, 1.0]);
            points.push(vec![0.0, v]);
            points.push(vec![1.0, v]);
        }
        let targets = points.iter().map(|_| vec![0.0]).collect();
        vec![Condition {
            name: "bc",
            deriv: None,
            points,
            targets,
        }]
    }
    fn analytic(&self, point: &[f64]) -> Option<Vec<f64>> {
        Some(vec![exact(point[0], point[1])])
    }
    fn reference(&self, fidelity: Fidelity) -> Box<dyn RefSolution> {
        // The manufactured solution *is* the reference; the FD solve below
        // is the independent numeric leg.
        let n = match fidelity {
            Fidelity::Quick => 49,
            Fidelity::Full => 97,
        };
        Box::new(AnalyticRef {
            f: |p: &[f64]| vec![exact(p[0], p[1])],
            grids: vec![uniform(0.0, 1.0, n, false), uniform(0.0, 1.0, n, false)],
        })
    }
    fn independent_check(&self) -> Option<Box<dyn RefSolution>> {
        let sol = helmholtz_fd_solve((0.0, 1.0), (0.0, 1.0), 40, 40, K, &|x, y| forcing(x, y));
        struct FdRef(qpinn_solvers::HelmholtzFd);
        impl RefSolution for FdRef {
            fn sample(&self, point: &[f64]) -> Vec<f64> {
                vec![self.0.sample(point[0], point[1])]
            }
            fn grids(&self) -> Vec<Vec<f64>> {
                vec![self.0.xs.clone(), self.0.ys.clone()]
            }
        }
        Some(Box::new(FdRef(sol)))
    }
    fn check_method(&self) -> &'static str {
        "manufactured solution vs 5-point FD dense-LU solve"
    }
    fn residual_tol(&self) -> f64 {
        // The forcing has amplitude |k² − 17π²| ≈ 167; FD truncation on
        // the harness lattice scales with it.
        2.0
    }
}
