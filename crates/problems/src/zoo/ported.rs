//! The five pre-registry families, ported onto the [`PdeProblem`] trait:
//! free/harmonic 1D TDSE, the bright NLS soliton, the 2D free packet, and
//! the harmonic stationary eigenproblem. The underlying structs
//! ([`TdseProblem`], [`NlsProblem`], …) stay as-is; these adapters add
//! the tape residual, condition sets, and reference factories.

use super::{
    point_column, uniform, ComplexFieldRef, Condition, CoordDef,
    CoordKind, Fidelity, PdeProblem, RefSolution,
};
use crate::{EigenProblem, GaussianPacket, NlsProblem, Potential, Tdse2dProblem, TdseProblem};
use qpinn_autodiff::jet::Jet;
use qpinn_autodiff::{Graph, Var};
use qpinn_dual::Complex64;
use qpinn_solvers::{bound_states, crank_nicolson_tdse, Field2d, Grid1d};

/// Schrödinger-type residuals for `ψ = u + iv` on coordinates
/// `(x[, y], t)`: `i ψ_t = −½∇²ψ + Vψ − g|ψ|²ψ`, split into real and
/// imaginary columns. `t_idx` names the time coordinate; all other
/// coordinates contribute to the Laplacian.
fn schrodinger_residuals(
    g: &mut Graph,
    fields: &[Jet],
    v_col: Var,
    g_nl: f64,
    t_idx: usize,
) -> Vec<Var> {
    let (u, v) = (&fields[0], &fields[1]);
    let lap = |g: &mut Graph, f: &Jet| {
        let mut acc: Option<Var> = None;
        for c in 0..f.n_coords() {
            if c == t_idx {
                continue;
            }
            acc = Some(match acc {
                None => f.dd[c],
                Some(a) => g.add(a, f.dd[c]),
            });
        }
        acc.expect("at least one spatial coordinate")
    };
    let (u_lap, v_lap) = (lap(g, u), lap(g, v));
    let vu = g.mul(v_col, u.v);
    let vv = g.mul(v_col, v.v);
    // |ψ|² ψ terms (zero coupling short-circuits to keep the tape lean).
    let (nl_u, nl_v) = if g_nl != 0.0 {
        let u2 = g.square(u.v);
        let v2 = g.square(v.v);
        let dens = g.add(u2, v2);
        let du = g.mul(dens, u.v);
        let dv = g.mul(dens, v.v);
        (Some(g.scale(du, g_nl)), Some(g.scale(dv, g_nl)))
    } else {
        (None, None)
    };
    // Re: −v_t + ½∇²u − Vu + g|ψ|²u
    let mut re = g.scale(v.d[t_idx], -1.0);
    let half_lap_u = g.scale(u_lap, 0.5);
    re = g.add(re, half_lap_u);
    re = g.sub(re, vu);
    if let Some(n) = nl_u {
        re = g.add(re, n);
    }
    // Im: u_t + ½∇²v − Vv + g|ψ|²v
    let half_lap_v = g.scale(v_lap, 0.5);
    let mut im = g.add(u.d[t_idx], half_lap_v);
    im = g.sub(im, vv);
    if let Some(n) = nl_v {
        im = g.add(im, n);
    }
    vec![re, im]
}

fn complex_targets(points: &[(f64,)], f: impl Fn(f64) -> Complex64) -> Vec<Vec<f64>> {
    points
        .iter()
        .map(|&(x,)| {
            let c = f(x);
            vec![c.re, c.im]
        })
        .collect()
}

// ---------------------------------------------------------------------------
// 1D TDSE adapters.

struct TdseZoo {
    key: &'static str,
    describe: &'static str,
    inner: TdseProblem,
}

/// `tdse-free`: spreading free Gaussian packet (closed form available).
pub(super) fn tdse_free() -> Box<dyn PdeProblem> {
    Box::new(TdseZoo {
        key: "tdse-free",
        describe: "1D free-particle TDSE, spreading Gaussian packet",
        inner: TdseProblem::free_packet(),
    })
}

/// `tdse-harmonic`: coherent state sloshing in a harmonic trap.
pub(super) fn tdse_harmonic() -> Box<dyn PdeProblem> {
    Box::new(TdseZoo {
        key: "tdse-harmonic",
        describe: "1D TDSE, coherent state in a harmonic trap",
        inner: TdseProblem::harmonic_packet(),
    })
}

impl TdseZoo {
    fn omega(&self) -> Option<f64> {
        match self.inner.potential {
            Potential::Harmonic { omega } => Some(omega),
            _ => None,
        }
    }
}

impl PdeProblem for TdseZoo {
    fn key(&self) -> &'static str {
        self.key
    }
    fn describe(&self) -> &'static str {
        self.describe
    }
    fn coords(&self) -> Vec<CoordDef> {
        vec![
            CoordDef {
                name: "x",
                lo: self.inner.x0,
                hi: self.inner.x1,
                kind: CoordKind::Periodic,
            },
            CoordDef {
                name: "t",
                lo: 0.0,
                hi: self.inner.t_end,
                kind: CoordKind::Time,
            },
        ]
    }
    fn n_outputs(&self) -> usize {
        2
    }
    fn residuals(&self, g: &mut Graph, fields: &[Jet], points: &[Vec<f64>]) -> Vec<Var> {
        let pot = self.inner.potential;
        let v_col = point_column(g, points, |p| pot.eval(p[0]));
        schrodinger_residuals(g, fields, v_col, 0.0, 1)
    }
    fn conditions(&self, n: usize) -> Vec<Condition> {
        let xs = uniform(self.inner.x0, self.inner.x1, n, true);
        let points: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x, 0.0]).collect();
        let targets = complex_targets(
            &xs.iter().map(|&x| (x,)).collect::<Vec<_>>(),
            |x| self.inner.initial(x),
        );
        vec![Condition {
            name: "ic",
            deriv: None,
            points,
            targets,
        }]
    }
    fn analytic(&self, point: &[f64]) -> Option<Vec<f64>> {
        let (x, t) = (point[0], point[1]);
        let c = match self.inner.potential {
            Potential::Free => self.inner.packet.free_evolution(x, t),
            Potential::Harmonic { omega } => self.inner.packet.coherent_evolution(omega, x, t),
            _ => return None,
        };
        Some(vec![c.re, c.im])
    }
    fn reference(&self, fidelity: Fidelity) -> Box<dyn RefSolution> {
        let (nx, nt, sl) = match fidelity {
            Fidelity::Quick => (128, 300, 30),
            Fidelity::Full => (256, 1500, 64),
        };
        Box::new(ComplexFieldRef {
            field: self.inner.reference(nx, nt, sl),
        })
    }
    fn independent_check(&self) -> Option<Box<dyn RefSolution>> {
        // Crank–Nicolson on a Dirichlet grid: a different propagator *and*
        // different boundary handling (valid because the packet stays
        // exponentially small at the edges).
        let grid = Grid1d::dirichlet(self.inner.x0, self.inner.x1, 257);
        let psi0: Vec<Complex64> = grid.points().iter().map(|&x| self.inner.initial(x)).collect();
        let pot = self.inner.potential;
        let field = crank_nicolson_tdse(
            &grid,
            &move |x| pot.eval(x),
            &psi0,
            self.inner.t_end,
            600,
            30,
        );
        Some(Box::new(ComplexFieldRef { field }))
    }
    fn check_method(&self) -> &'static str {
        match self.omega() {
            None => "analytic packet vs split-step spectral",
            Some(_) => "coherent-state closed form vs split-step + Crank-Nicolson",
        }
    }
}

// ---------------------------------------------------------------------------
// NLS bright soliton.

struct NlsZoo {
    inner: NlsProblem,
}

/// `nls-soliton`: focusing cubic NLS single bright soliton.
pub(super) fn nls_soliton() -> Box<dyn PdeProblem> {
    Box::new(NlsZoo {
        inner: NlsProblem::bright_soliton(1.0),
    })
}

impl PdeProblem for NlsZoo {
    fn key(&self) -> &'static str {
        "nls-soliton"
    }
    fn describe(&self) -> &'static str {
        "focusing cubic NLS, single bright soliton"
    }
    fn coords(&self) -> Vec<CoordDef> {
        vec![
            CoordDef {
                name: "x",
                lo: self.inner.x0,
                hi: self.inner.x1,
                kind: CoordKind::Periodic,
            },
            CoordDef {
                name: "t",
                lo: 0.0,
                hi: self.inner.t_end,
                kind: CoordKind::Time,
            },
        ]
    }
    fn n_outputs(&self) -> usize {
        2
    }
    fn residuals(&self, g: &mut Graph, fields: &[Jet], points: &[Vec<f64>]) -> Vec<Var> {
        let v_col = point_column(g, points, |_| 0.0);
        schrodinger_residuals(g, fields, v_col, self.inner.g, 1)
    }
    fn conditions(&self, n: usize) -> Vec<Condition> {
        let xs = uniform(self.inner.x0, self.inner.x1, n, true);
        let points: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x, 0.0]).collect();
        let targets = complex_targets(
            &xs.iter().map(|&x| (x,)).collect::<Vec<_>>(),
            |x| self.inner.initial(x),
        );
        vec![Condition {
            name: "ic",
            deriv: None,
            points,
            targets,
        }]
    }
    fn analytic(&self, point: &[f64]) -> Option<Vec<f64>> {
        self.inner
            .analytic(point[0], point[1])
            .map(|c| vec![c.re, c.im])
    }
    fn reference(&self, fidelity: Fidelity) -> Box<dyn RefSolution> {
        let (nx, nt, sl) = match fidelity {
            Fidelity::Quick => (128, 400, 30),
            Fidelity::Full => (256, 2000, 64),
        };
        Box::new(ComplexFieldRef {
            field: self.inner.reference(nx, nt, sl),
        })
    }
    fn check_method(&self) -> &'static str {
        "soliton closed form vs split-step spectral"
    }
}

// ---------------------------------------------------------------------------
// 2D free packet.

struct Tdse2dZoo {
    inner: Tdse2dProblem,
}

/// `tdse2d-free`: separable free 2D Gaussian packet.
pub(super) fn tdse2d_free() -> Box<dyn PdeProblem> {
    Box::new(Tdse2dZoo {
        inner: Tdse2dProblem::free_packet_2d(),
    })
}

impl Tdse2dZoo {
    fn packet_1d(&self, center: f64) -> GaussianPacket {
        GaussianPacket {
            x0: center,
            sigma: self.inner.sigma,
            k0: 0.0,
        }
    }
}

/// [`Field2d`] reference wrapper carrying the node lattice (the field
/// itself keeps its grids private).
struct Field2dRef {
    field: Field2d,
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl RefSolution for Field2dRef {
    fn sample(&self, point: &[f64]) -> Vec<f64> {
        let c = self.field.sample(point[0], point[1], point[2]);
        vec![c.re, c.im]
    }
    fn grids(&self) -> Vec<Vec<f64>> {
        vec![self.xs.clone(), self.ys.clone(), self.field.times().to_vec()]
    }
}

impl PdeProblem for Tdse2dZoo {
    fn key(&self) -> &'static str {
        "tdse2d-free"
    }
    fn describe(&self) -> &'static str {
        "2D free-particle TDSE, separable spreading packet"
    }
    fn coords(&self) -> Vec<CoordDef> {
        vec![
            CoordDef {
                name: "x",
                lo: self.inner.x.0,
                hi: self.inner.x.1,
                kind: CoordKind::Periodic,
            },
            CoordDef {
                name: "y",
                lo: self.inner.y.0,
                hi: self.inner.y.1,
                kind: CoordKind::Periodic,
            },
            CoordDef {
                name: "t",
                lo: 0.0,
                hi: self.inner.t_end,
                kind: CoordKind::Time,
            },
        ]
    }
    fn n_outputs(&self) -> usize {
        2
    }
    fn residuals(&self, g: &mut Graph, fields: &[Jet], points: &[Vec<f64>]) -> Vec<Var> {
        let pot = self.inner.potential;
        let v_col = point_column(g, points, |p| pot.eval(p[0], p[1]));
        schrodinger_residuals(g, fields, v_col, 0.0, 2)
    }
    fn conditions(&self, n: usize) -> Vec<Condition> {
        let m = (n as f64).sqrt().ceil() as usize;
        let xs = uniform(self.inner.x.0, self.inner.x.1, m, true);
        let ys = uniform(self.inner.y.0, self.inner.y.1, m, true);
        let mut points = Vec::with_capacity(m * m);
        let mut targets = Vec::with_capacity(m * m);
        for &x in &xs {
            for &y in &ys {
                points.push(vec![x, y, 0.0]);
                let c = self.inner.initial(x, y);
                targets.push(vec![c.re, c.im]);
            }
        }
        vec![Condition {
            name: "ic",
            deriv: None,
            points,
            targets,
        }]
    }
    fn analytic(&self, point: &[f64]) -> Option<Vec<f64>> {
        if self.inner.potential != crate::Potential2d::Free {
            return None;
        }
        let px = self.packet_1d(self.inner.center.0);
        let py = self.packet_1d(self.inner.center.1);
        let c = px.free_evolution(point[0], point[2]) * py.free_evolution(point[1], point[2]);
        Some(vec![c.re, c.im])
    }
    fn reference(&self, fidelity: Fidelity) -> Box<dyn RefSolution> {
        let (nx, nt, sl) = match fidelity {
            Fidelity::Quick => (32, 120, 12),
            Fidelity::Full => (64, 600, 24),
        };
        let field = self.inner.reference(nx, nx, nt, sl);
        Box::new(Field2dRef {
            field,
            xs: Grid1d::periodic(self.inner.x.0, self.inner.x.1, nx).points(),
            ys: Grid1d::periodic(self.inner.y.0, self.inner.y.1, nx).points(),
        })
    }
    fn check_method(&self) -> &'static str {
        "separable packet closed form vs 2D split-step"
    }
}

// ---------------------------------------------------------------------------
// Stationary harmonic eigenproblem (ground state, fixed E₀ = ω/2).

struct EigenZoo {
    inner: EigenProblem,
    omega: f64,
}

/// `eigen-harmonic`: harmonic-oscillator ground state as a BVP with the
/// exact eigenvalue pinned in the residual.
pub(super) fn eigen_harmonic() -> Box<dyn PdeProblem> {
    Box::new(EigenZoo {
        inner: EigenProblem::harmonic(1.0),
        omega: 1.0,
    })
}

impl EigenZoo {
    fn ground_state(&self, x: f64) -> f64 {
        // ψ₀ = (ω/π)^{1/4} e^{−ωx²/2}, normalized to ∫ψ² = 1.
        (self.omega / std::f64::consts::PI).powf(0.25) * (-0.5 * self.omega * x * x).exp()
    }
}

struct EigenRef {
    xs: Vec<f64>,
    psi: Vec<f64>,
}

impl RefSolution for EigenRef {
    fn sample(&self, point: &[f64]) -> Vec<f64> {
        let x = point[0];
        let h = self.xs[1] - self.xs[0];
        let s = ((x - self.xs[0]) / h).clamp(0.0, (self.xs.len() - 1) as f64);
        let i = (s.floor() as usize).min(self.xs.len() - 2);
        let w = s - i as f64;
        vec![self.psi[i] * (1.0 - w) + self.psi[i + 1] * w]
    }
    fn grids(&self) -> Vec<Vec<f64>> {
        vec![self.xs.clone()]
    }
}

impl PdeProblem for EigenZoo {
    fn key(&self) -> &'static str {
        "eigen-harmonic"
    }
    fn describe(&self) -> &'static str {
        "stationary Schrödinger ground state in a harmonic trap (E₀ = ω/2)"
    }
    fn coords(&self) -> Vec<CoordDef> {
        vec![CoordDef {
            name: "x",
            lo: self.inner.x0,
            hi: self.inner.x1,
            kind: CoordKind::Bounded,
        }]
    }
    fn n_outputs(&self) -> usize {
        1
    }
    fn residuals(&self, g: &mut Graph, fields: &[Jet], points: &[Vec<f64>]) -> Vec<Var> {
        let pot = self.inner.potential.clone();
        let v_col = point_column(g, points, |p| pot.eval(p[0]));
        let e0 = 0.5 * self.omega;
        let psi = &fields[0];
        // −½ψ″ + Vψ − E₀ψ
        let mut r = g.scale(psi.dd[0], -0.5);
        let vp = g.mul(v_col, psi.v);
        r = g.add(r, vp);
        let ep = g.scale(psi.v, e0);
        vec![g.sub(r, ep)]
    }
    fn conditions(&self, n: usize) -> Vec<Condition> {
        // Dirichlet edges plus amplitude anchors: without an amplitude
        // pin, ψ ≡ 0 solves residual + BC exactly.
        let anchors = uniform(-1.0, 1.0, n.max(3).min(9), false);
        vec![
            Condition {
                name: "bc",
                deriv: None,
                points: vec![vec![self.inner.x0], vec![self.inner.x1]],
                targets: vec![vec![0.0], vec![0.0]],
            },
            Condition {
                name: "anchor",
                deriv: None,
                points: anchors.iter().map(|&x| vec![x]).collect(),
                targets: anchors.iter().map(|&x| vec![self.ground_state(x)]).collect(),
            },
        ]
    }
    fn analytic(&self, point: &[f64]) -> Option<Vec<f64>> {
        Some(vec![self.ground_state(point[0])])
    }
    fn reference(&self, fidelity: Fidelity) -> Box<dyn RefSolution> {
        let n = match fidelity {
            Fidelity::Quick => 301,
            Fidelity::Full => 801,
        };
        let grid = Grid1d::dirichlet(self.inner.x0, self.inner.x1, n);
        let pot = self.inner.potential.clone();
        let state = bound_states(&grid, &move |x| pot.eval(x), 1).remove(0);
        Box::new(EigenRef {
            xs: grid.points(),
            psi: state.psi,
        })
    }
    fn check_method(&self) -> &'static str {
        "Hermite closed form vs FD eigensolver"
    }
    fn residual_tol(&self) -> f64 {
        0.02
    }
}
