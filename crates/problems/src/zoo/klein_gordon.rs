//! The linear Klein-Gordon equation `u_tt = u_xx − m²u` on a periodic
//! interval. A single Fourier mode oscillates at the relativistic
//! dispersion `ω = √(k² + m²)` — a closed form that pins both the mass
//! term's sign and its coupling to the spatial operator.

use super::{uniform, Condition, CoordDef, CoordKind, Fidelity, MolRef, PdeProblem, RefSolution};
use qpinn_autodiff::jet::Jet;
use qpinn_autodiff::{Graph, Var};
use qpinn_solvers::{laplacian_periodic, mol_rk4, Grid1d};
use std::f64::consts::PI;

const M: f64 = 1.0; // mass
const K: f64 = 1.0; // wavenumber
const T_END: f64 = 2.0;

struct KleinGordon;

/// `klein-gordon` registry entry.
pub(super) fn problem() -> Box<dyn PdeProblem> {
    Box::new(KleinGordon)
}

fn omega() -> f64 {
    (K * K + M * M).sqrt()
}

fn exact(x: f64, t: f64) -> f64 {
    (K * x).sin() * (omega() * t).cos()
}

impl PdeProblem for KleinGordon {
    fn key(&self) -> &'static str {
        "klein-gordon"
    }
    fn describe(&self) -> &'static str {
        "linear Klein-Gordon, single mode at relativistic dispersion"
    }
    fn coords(&self) -> Vec<CoordDef> {
        vec![
            CoordDef {
                name: "x",
                lo: 0.0,
                hi: 2.0 * PI,
                kind: CoordKind::Periodic,
            },
            CoordDef {
                name: "t",
                lo: 0.0,
                hi: T_END,
                kind: CoordKind::Time,
            },
        ]
    }
    fn n_outputs(&self) -> usize {
        1
    }
    fn residuals(&self, g: &mut Graph, fields: &[Jet], _points: &[Vec<f64>]) -> Vec<Var> {
        let u = &fields[0];
        // u_tt − u_xx + m²u
        let mut r = g.sub(u.dd[1], u.dd[0]);
        let mu = g.scale(u.v, M * M);
        r = g.add(r, mu);
        vec![r]
    }
    fn conditions(&self, n: usize) -> Vec<Condition> {
        let xs = uniform(0.0, 2.0 * PI, n, true);
        let points: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x, 0.0]).collect();
        vec![
            Condition {
                name: "ic",
                deriv: None,
                points: points.clone(),
                targets: xs.iter().map(|&x| vec![exact(x, 0.0)]).collect(),
            },
            Condition {
                name: "ic-velocity",
                deriv: Some(1),
                points,
                targets: xs.iter().map(|_| vec![0.0]).collect(),
            },
        ]
    }
    fn analytic(&self, point: &[f64]) -> Option<Vec<f64>> {
        Some(vec![exact(point[0], point[1])])
    }
    fn reference(&self, fidelity: Fidelity) -> Box<dyn RefSolution> {
        let (nx, nt, sl) = match fidelity {
            Fidelity::Quick => (256, 800, 40),
            Fidelity::Full => (512, 4000, 80),
        };
        let grid = Grid1d::periodic(0.0, 2.0 * PI, nx);
        let n = grid.n;
        let mut y0 = vec![0.0; 2 * n];
        for (i, &x) in grid.points().iter().enumerate() {
            y0[i] = exact(x, 0.0);
        }
        let dx = grid.dx();
        let rhs = move |_t: f64, y: &[f64], dy: &mut [f64]| {
            let (u, w) = y.split_at(n);
            let (du, dw) = dy.split_at_mut(n);
            du.copy_from_slice(w);
            laplacian_periodic(u, dx, dw);
            for (d, &ui) in dw.iter_mut().zip(u) {
                *d -= M * M * ui;
            }
        };
        let field = mol_rk4(&grid, 2, &rhs, &y0, T_END, nt, nt / sl);
        Box::new(MolRef { field, n_out: 1 })
    }
    fn check_method(&self) -> &'static str {
        "dispersion closed form vs MOL RK4 (first-order system)"
    }
}
