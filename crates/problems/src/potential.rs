//! The potential library `V(x)`.

/// A 1D external potential.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Potential {
    /// `V = 0` (free particle / infinite well depending on boundaries).
    Free,
    /// Harmonic oscillator `V = ½ω²x²`.
    Harmonic {
        /// Angular frequency.
        omega: f64,
    },
    /// Smooth (Gaussian) barrier `V = h·exp(−x²/(2w²))` centred at the
    /// origin — smooth so PINN residuals stay well-defined.
    Barrier {
        /// Barrier height.
        height: f64,
        /// Barrier width parameter.
        width: f64,
    },
    /// Quartic double well `V = c·(x² − a²)²`.
    DoubleWell {
        /// Well separation parameter (minima at ±a).
        a: f64,
        /// Stiffness.
        c: f64,
    },
}

impl Potential {
    /// Evaluate `V(x)`.
    pub fn eval(&self, x: f64) -> f64 {
        match *self {
            Potential::Free => 0.0,
            Potential::Harmonic { omega } => 0.5 * omega * omega * x * x,
            Potential::Barrier { height, width } => {
                height * (-x * x / (2.0 * width * width)).exp()
            }
            Potential::DoubleWell { a, c } => c * (x * x - a * a).powi(2),
        }
    }

    /// Short identifier for reports.
    pub fn name(&self) -> String {
        match *self {
            Potential::Free => "free".into(),
            Potential::Harmonic { omega } => format!("harmonic(ω={omega})"),
            Potential::Barrier { height, width } => format!("barrier(h={height},w={width})"),
            Potential::DoubleWell { a, c } => format!("double-well(a={a},c={c})"),
        }
    }

    /// A boxed closure view (the solver interface).
    pub fn as_fn(&self) -> impl Fn(f64) -> f64 + '_ {
        move |x| self.eval(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes() {
        assert_eq!(Potential::Free.eval(3.0), 0.0);
        assert_eq!(Potential::Harmonic { omega: 2.0 }.eval(1.0), 2.0);
        let b = Potential::Barrier {
            height: 5.0,
            width: 1.0,
        };
        assert!((b.eval(0.0) - 5.0).abs() < 1e-15);
        assert!(b.eval(3.0) < b.eval(0.0));
        let w = Potential::DoubleWell { a: 1.5, c: 2.0 };
        assert_eq!(w.eval(1.5), 0.0);
        assert_eq!(w.eval(-1.5), 0.0);
        assert!(w.eval(0.0) > 0.0);
    }

    #[test]
    fn symmetry() {
        for p in [
            Potential::Harmonic { omega: 1.3 },
            Potential::Barrier {
                height: 2.0,
                width: 0.5,
            },
            Potential::DoubleWell { a: 1.0, c: 1.0 },
        ] {
            for &x in &[0.3, 1.1, 2.7] {
                assert!((p.eval(x) - p.eval(-x)).abs() < 1e-15, "{p:?} at {x}");
            }
        }
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<String> = [
            Potential::Free,
            Potential::Harmonic { omega: 1.0 },
            Potential::Barrier {
                height: 1.0,
                width: 1.0,
            },
            Potential::DoubleWell { a: 1.0, c: 1.0 },
        ]
        .iter()
        .map(|p| p.name())
        .collect();
        for i in 0..names.len() {
            for j in 0..i {
                assert_ne!(names[i], names[j]);
            }
        }
    }
}
