//! # qpinn-problems
//!
//! Benchmark problem definitions for quantum-physics PINNs: potentials,
//! initial wavepackets, the three problem families (time-dependent
//! Schrödinger, nonlinear Schrödinger, stationary eigenproblems), closed-
//! form solutions where they exist, and reference-solution generation via
//! `qpinn-solvers`.
//!
//! Since the registry refactor, families are *data*: the [`zoo`] module
//! defines the [`PdeProblem`] trait (tape residual, domain, condition
//! sets, reference-solver factory) and a string-keyed registry —
//! [`lookup`]`("helmholtz")` returns a boxed definition ready for the
//! generic trainer task, and [`keys`] enumerates everything registered.
//!
//! All quantum problems use natural units `ħ = m = 1`.

#![deny(missing_docs)]

pub mod eigen;
pub mod nls;
pub mod potential;
pub mod tdse;
pub mod tdse2d;
pub mod wavepacket;
pub mod zoo;

pub use eigen::EigenProblem;
pub use nls::NlsProblem;
pub use potential::Potential;
pub use tdse::{Boundary, TdseProblem};
pub use tdse2d::{Potential2d, Tdse2dProblem};
pub use wavepacket::GaussianPacket;
pub use zoo::{
    keys, lookup, Condition, CoordDef, CoordKind, Fidelity, PdeProblem, RefSolution,
    UnknownProblem,
};
