//! Gaussian wavepackets: initial conditions and the closed-form free
//! evolution used as an analytic oracle.

use qpinn_dual::Complex64;

/// A normalized Gaussian packet
/// `ψ₀(x) = (2πσ²)^{-1/4} exp(−(x−x₀)²/(4σ²) + i k₀(x−x₀))`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GaussianPacket {
    /// Centre position.
    pub x0: f64,
    /// Width parameter (position standard deviation of `|ψ|²` is σ).
    pub sigma: f64,
    /// Mean momentum.
    pub k0: f64,
}

impl GaussianPacket {
    /// A packet at rest at the origin.
    pub fn at_rest(sigma: f64) -> Self {
        GaussianPacket {
            x0: 0.0,
            sigma,
            k0: 0.0,
        }
    }

    /// The initial wavefunction.
    pub fn eval(&self, x: f64) -> Complex64 {
        let s2 = self.sigma * self.sigma;
        let norm = 1.0 / (2.0 * std::f64::consts::PI * s2).powf(0.25);
        let dx = x - self.x0;
        Complex64::from_polar(norm * (-dx * dx / (4.0 * s2)).exp(), self.k0 * dx)
    }

    /// Closed-form free evolution (`V = 0`, `ħ = m = 1`):
    ///
    /// `ψ(x,t) = (2πσ²)^{-1/4} (1 + it/(2σ²))^{-1/2}
    ///           exp( −(x−x₀−k₀t)² / (4σ²(1 + it/(2σ²)))
    ///                + i k₀(x−x₀) − i k₀² t/2 )`.
    ///
    /// Verified against the split-step spectral solver in the tests.
    pub fn free_evolution(&self, x: f64, t: f64) -> Complex64 {
        let s2 = self.sigma * self.sigma;
        let norm = 1.0 / (2.0 * std::f64::consts::PI * s2).powf(0.25);
        let z = Complex64::new(1.0, t / (2.0 * s2)); // 1 + it/(2σ²)
        let dx = x - self.x0 - self.k0 * t;
        let gauss_arg = Complex64::new(-dx * dx / (4.0 * s2), 0.0) / z;
        let phase = Complex64::new(0.0, self.k0 * (x - self.x0) - 0.5 * self.k0 * self.k0 * t);
        let prefactor = Complex64::new(norm, 0.0) / z.sqrt();
        prefactor * (gauss_arg + phase).exp()
    }

    /// Density standard deviation at time `t` under free evolution:
    /// `σ(t) = σ√(1 + (t/(2σ²))²)`.
    pub fn width_at(&self, t: f64) -> f64 {
        let s2 = self.sigma * self.sigma;
        self.sigma * (1.0 + (t / (2.0 * s2)).powi(2)).sqrt()
    }

    /// A coherent state of the harmonic oscillator `V = ½ω²x²`: the ground
    /// state displaced to `x0` (requires `σ² = 1/(2ω)` and `k0 = 0`).
    pub fn coherent(omega: f64, x0: f64) -> Self {
        GaussianPacket {
            x0,
            sigma: (1.0 / (2.0 * omega)).sqrt(),
            k0: 0.0,
        }
    }

    /// Closed-form evolution of a coherent state in `V = ½ω²x²`
    /// (Schiff/Glauber):
    ///
    /// `ψ(x,t) = (ω/π)^{1/4} exp{ −ω(x − x₀cos ωt)²/2
    ///            − i[ ωt/2 + ω x x₀ sin ωt − (ω x₀²/4) sin 2ωt ] }`.
    ///
    /// Only valid for packets built by [`GaussianPacket::coherent`];
    /// verified against the split-step solver in the tests.
    pub fn coherent_evolution(&self, omega: f64, x: f64, t: f64) -> Complex64 {
        let amp = (omega / std::f64::consts::PI).powf(0.25)
            * (-0.5 * omega * (x - self.x0 * (omega * t).cos()).powi(2)).exp();
        let phase = -(0.5 * omega * t + omega * x * self.x0 * (omega * t).sin()
            - 0.25 * omega * self.x0 * self.x0 * (2.0 * omega * t).sin());
        Complex64::from_polar(amp, phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpinn_solvers::{split_step_evolve, Grid1d, Nonlinearity};

    #[test]
    fn initial_state_is_normalized() {
        let p = GaussianPacket {
            x0: 0.5,
            sigma: 0.6,
            k0: 3.0,
        };
        let grid = Grid1d::periodic(-15.0, 15.0, 1024);
        let dens: Vec<f64> = grid.points().iter().map(|&x| p.eval(x).norm_sqr()).collect();
        assert!((grid.integrate(&dens) - 1.0).abs() < 1e-10);
    }

    #[test]
    fn evolution_at_t0_matches_initial() {
        let p = GaussianPacket {
            x0: -0.3,
            sigma: 0.8,
            k0: 1.5,
        };
        for &x in &[-1.0, 0.0, 0.7, 2.0] {
            let a = p.eval(x);
            let b = p.free_evolution(x, 0.0);
            assert!((a - b).abs() < 1e-12, "at {x}: {a:?} vs {b:?}");
        }
    }

    #[test]
    fn closed_form_matches_split_step() {
        // The decisive oracle test: the analytic formula must agree with the
        // spectral solver pointwise.
        let p = GaussianPacket {
            x0: 0.0,
            sigma: 0.7,
            k0: 2.0,
        };
        let grid = Grid1d::periodic(-16.0, 16.0, 512);
        let psi0: Vec<Complex64> = grid.points().iter().map(|&x| p.eval(x)).collect();
        let t = 1.1;
        let f = split_step_evolve(&grid, &|_| 0.0, Nonlinearity::None, &psi0, t, 1100, 1100);
        let last = f.slice(f.n_slices() - 1);
        for (x, v) in grid.points().iter().zip(last) {
            // skip the domain edges where periodic images interfere slightly
            if x.abs() > 12.0 {
                continue;
            }
            let want = p.free_evolution(*x, t);
            assert!(
                (v.re - want.re).abs() < 5e-6 && (v.im - want.im).abs() < 5e-6,
                "at {x}: {v:?} vs {want:?}"
            );
        }
    }

    #[test]
    fn width_grows_as_predicted() {
        let p = GaussianPacket::at_rest(0.5);
        assert!((p.width_at(0.0) - 0.5).abs() < 1e-15);
        // t = 2σ² doubles the variance: σ(t) = σ√2.
        let t = 2.0 * 0.25;
        assert!((p.width_at(t) - 0.5 * 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn coherent_evolution_matches_split_step() {
        let omega = 2.0;
        let p = GaussianPacket::coherent(omega, 1.5);
        let grid = Grid1d::periodic(-10.0, 10.0, 256);
        let psi0: Vec<Complex64> = grid.points().iter().map(|&x| p.eval(x)).collect();
        let t = 0.9;
        let f = split_step_evolve(
            &grid,
            &|x| 0.5 * omega * omega * x * x,
            Nonlinearity::None,
            &psi0,
            t,
            4000,
            4000,
        );
        let last = f.slice(f.n_slices() - 1);
        // the closed form and the solver may differ by a constant global
        // phase convention; compare after aligning the phase at the densest
        // point, then check everything matches
        let xs = grid.points();
        let i0 = xs
            .iter()
            .enumerate()
            .min_by(|a, b| {
                (a.1 - 1.5 * (omega * t).cos())
                    .abs()
                    .partial_cmp(&(b.1 - 1.5 * (omega * t).cos()).abs())
                    .unwrap()
            })
            .unwrap()
            .0;
        let align = last[i0] / p.coherent_evolution(omega, xs[i0], t);
        assert!(
            (align.abs() - 1.0).abs() < 1e-5,
            "phase alignment should be unimodular: {align:?}"
        );
        for (x, v) in xs.iter().zip(last) {
            if x.abs() > 6.0 {
                continue;
            }
            let want = p.coherent_evolution(omega, *x, t) * align;
            assert!(
                (*v - want).abs() < 1e-5,
                "at {x}: {v:?} vs {want:?} (align {align:?})"
            );
        }
    }

    #[test]
    fn moving_packet_centre_translates() {
        let p = GaussianPacket {
            x0: -2.0,
            sigma: 0.5,
            k0: 4.0,
        };
        let t = 0.5;
        // |ψ(x, t)| should peak at x₀ + k₀ t = 0.
        let peak_val = p.free_evolution(-2.0 + 4.0 * t, t).abs();
        for &x in &[-2.0, -1.0, 1.0, 2.0] {
            assert!(p.free_evolution(x, t).abs() <= peak_val + 1e-12);
        }
    }
}
