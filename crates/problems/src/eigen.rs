//! Stationary Schrödinger eigenproblems: `−½ψ″ + V(x)ψ = Eψ` with
//! Dirichlet boundaries, trainable eigenvalue, and known exact spectra for
//! validation.

use crate::potential::Potential;
use qpinn_solvers::{bound_states, BoundState, Grid1d};

/// An eigenproblem benchmark.
#[derive(Clone, Debug)]
pub struct EigenProblem {
    /// Identifier used in reports.
    pub name: String,
    /// Left edge (`ψ = 0` there).
    pub x0: f64,
    /// Right edge (`ψ = 0` there).
    pub x1: f64,
    /// External potential.
    pub potential: Potential,
    /// Number of states requested.
    pub n_states: usize,
}

impl EigenProblem {
    /// Particle in a box on `[0, 1]`: `E_n = n²π²/2`.
    pub fn infinite_well() -> Self {
        EigenProblem {
            name: "infinite-well".into(),
            x0: 0.0,
            x1: 1.0,
            potential: Potential::Free,
            n_states: 4,
        }
    }

    /// Harmonic oscillator on a large box: `E_n = ω(n + ½)`.
    pub fn harmonic(omega: f64) -> Self {
        EigenProblem {
            name: format!("harmonic-eigen(ω={omega})"),
            x0: -8.0,
            x1: 8.0,
            potential: Potential::Harmonic { omega },
            n_states: 4,
        }
    }

    /// Quartic double well (no closed form; FD reference only).
    pub fn double_well() -> Self {
        EigenProblem {
            name: "double-well-eigen".into(),
            x0: -4.0,
            x1: 4.0,
            potential: Potential::DoubleWell { a: 1.5, c: 1.0 },
            n_states: 4,
        }
    }

    /// Exact eigenvalues where known.
    pub fn exact_energies(&self) -> Option<Vec<f64>> {
        match self.potential {
            Potential::Free => {
                let l = self.x1 - self.x0;
                Some(
                    (1..=self.n_states)
                        .map(|n| (n as f64 * std::f64::consts::PI).powi(2) / (2.0 * l * l))
                        .collect(),
                )
            }
            Potential::Harmonic { omega } => Some(
                (0..self.n_states)
                    .map(|n| omega * (n as f64 + 0.5))
                    .collect(),
            ),
            _ => None,
        }
    }

    /// Finite-difference reference states on an `nx`-point grid.
    pub fn reference(&self, nx: usize) -> Vec<BoundState> {
        let grid = Grid1d::dirichlet(self.x0, self.x1, nx);
        let v = self.potential;
        bound_states(&grid, &move |x| v.eval(x), self.n_states)
    }

    /// The Dirichlet grid the reference uses.
    pub fn grid(&self, nx: usize) -> Grid1d {
        Grid1d::dirichlet(self.x0, self.x1, nx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn well_reference_matches_exact() {
        let p = EigenProblem::infinite_well();
        let exact = p.exact_energies().unwrap();
        let states = p.reference(601);
        for (s, e) in states.iter().zip(&exact) {
            assert!((s.energy - e).abs() < 2e-3 * e, "{} vs {e}", s.energy);
        }
    }

    #[test]
    fn harmonic_reference_matches_exact() {
        let p = EigenProblem::harmonic(1.0);
        let exact = p.exact_energies().unwrap();
        let states = p.reference(801);
        for (s, e) in states.iter().zip(&exact) {
            assert!((s.energy - e).abs() < 2e-3, "{} vs {e}", s.energy);
        }
    }

    #[test]
    fn double_well_has_no_closed_form_but_solves() {
        let p = EigenProblem::double_well();
        assert!(p.exact_energies().is_none());
        let states = p.reference(501);
        assert_eq!(states.len(), 4);
        for w in states.windows(2) {
            assert!(w[0].energy <= w[1].energy + 1e-12);
        }
    }
}
