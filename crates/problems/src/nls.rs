//! Nonlinear Schrödinger benchmarks, including the canonical PINN test
//! problem of Raissi, Perdikaris & Karniadakis (2019):
//! `i h_t + ½ h_xx + |h|² h = 0`, `h(0, x) = 2 sech(x)`, periodic on
//! `x ∈ [−5, 5]`, `t ∈ [0, π/2]`.

use qpinn_dual::Complex64;
use qpinn_solvers::{split_step_evolve, Field1d, Grid1d, Nonlinearity};

/// A focusing cubic NLS problem `i h_t + ½h_xx + g|h|²h = 0` with a sech
/// initial profile `h(0, x) = amplitude · sech(amplitude_scale · x)`.
#[derive(Clone, Debug)]
pub struct NlsProblem {
    /// Identifier used in reports.
    pub name: String,
    /// Left spatial edge.
    pub x0: f64,
    /// Right spatial edge.
    pub x1: f64,
    /// Final time.
    pub t_end: f64,
    /// Cubic coupling (1 for the standard benchmark).
    pub g: f64,
    /// Initial amplitude.
    pub amplitude: f64,
    /// Initial inverse width.
    pub inv_width: f64,
}

impl NlsProblem {
    /// The Raissi et al. benchmark: `h(0,x) = 2 sech(x)` — a bound 2-soliton
    /// state that breathes periodically (no simple closed form; the
    /// spectral solver provides the reference).
    pub fn raissi_benchmark() -> Self {
        NlsProblem {
            name: "nls-raissi".into(),
            x0: -5.0,
            x1: 5.0,
            t_end: std::f64::consts::FRAC_PI_2,
            g: 1.0,
            amplitude: 2.0,
            inv_width: 1.0,
        }
    }

    /// A single bright soliton `h(0,x) = a sech(a x)`, whose exact solution
    /// is `a sech(a x)·e^{i a² t / 2}`.
    pub fn bright_soliton(a: f64) -> Self {
        NlsProblem {
            name: format!("nls-soliton(a={a})"),
            x0: -10.0,
            x1: 10.0,
            t_end: 1.0,
            g: 1.0,
            amplitude: a,
            inv_width: a,
        }
    }

    /// Domain length.
    pub fn length(&self) -> f64 {
        self.x1 - self.x0
    }

    /// The initial condition.
    pub fn initial(&self, x: f64) -> Complex64 {
        Complex64::new(self.amplitude / (self.inv_width * x).cosh(), 0.0)
    }

    /// The exact solution for the single-soliton configuration
    /// (`amplitude == inv_width`, `g == 1`), `None` otherwise.
    pub fn analytic(&self, x: f64, t: f64) -> Option<Complex64> {
        if (self.amplitude - self.inv_width).abs() < 1e-12 && (self.g - 1.0).abs() < 1e-12 {
            let a = self.amplitude;
            Some(Complex64::from_polar(
                a / (a * x).cosh(),
                0.5 * a * a * t,
            ))
        } else {
            None
        }
    }

    /// Spectral reference solution (`nx` must be a power of two).
    pub fn reference(&self, nx: usize, nt: usize, n_slices: usize) -> Field1d {
        let grid = Grid1d::periodic(self.x0, self.x1, nx);
        let psi0: Vec<Complex64> = grid.points().iter().map(|&x| self.initial(x)).collect();
        let store_every = (nt / n_slices.max(1)).max(1);
        split_step_evolve(
            &grid,
            &|_| 0.0,
            Nonlinearity::Cubic { g: self.g },
            &psi0,
            self.t_end,
            nt,
            store_every,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn soliton_reference_matches_analytic() {
        let p = NlsProblem::bright_soliton(1.5);
        let f = p.reference(256, 2000, 4);
        let t = *f.times().last().unwrap();
        for x in [-3.0, -1.0, 0.0, 0.5, 2.0] {
            let got = f.sample(x, t);
            let want = p.analytic(x, t).unwrap();
            assert!(
                (got - want).abs() < 1e-3,
                "at {x}: {got:?} vs {want:?}"
            );
        }
    }

    #[test]
    fn raissi_benchmark_peak_amplitude_grows() {
        // The 2-soliton bound state breathes: |h| at the origin famously
        // exceeds 2 during the evolution (peaking near 4 around t ≈ π/4…
        // π/2 window). Check the max over time is well above the initial 2.
        let p = NlsProblem::raissi_benchmark();
        let f = p.reference(256, 2000, 40);
        let mut peak = 0.0f64;
        for k in 0..f.n_slices() {
            for c in f.slice(k) {
                peak = peak.max(c.abs());
            }
        }
        assert!(peak > 3.0, "peak {peak}");
    }

    #[test]
    fn raissi_benchmark_conserves_norm_and_mass() {
        let p = NlsProblem::raissi_benchmark();
        let f = p.reference(128, 800, 8);
        let n0 = f.norm_at(0);
        // ∫|2 sech x|² dx = 8 (up to periodic truncation)
        assert!((n0 - 8.0).abs() < 1e-3, "n0 = {n0}");
        for k in 0..f.n_slices() {
            assert!((f.norm_at(k) - n0).abs() < 1e-8 * n0);
        }
    }

    #[test]
    fn no_analytic_for_multisoliton() {
        assert!(NlsProblem::raissi_benchmark().analytic(0.0, 0.1).is_none());
        assert!(NlsProblem::bright_soliton(1.0).analytic(0.0, 0.1).is_some());
    }
}
