//! Eigenvalues and eigenvectors of symmetric tridiagonal matrices.
//!
//! The discretized 1D Hamiltonian `−½∂²/∂x² + V(x)` with Dirichlet
//! boundaries is symmetric tridiagonal; its spectrum is found by Sturm
//! sequence bisection (robust, any subset of eigenvalues) and its
//! eigenvectors by inverse iteration.

use crate::tridiag::{solve_tridiag, Tridiag};

/// A symmetric tridiagonal matrix: main diagonal `d` and off-diagonal `e`
/// (length n−1).
#[derive(Clone, Debug)]
pub struct SymTridiag {
    /// Main diagonal.
    pub d: Vec<f64>,
    /// Off-diagonal (sub = sup by symmetry).
    pub e: Vec<f64>,
}

impl SymTridiag {
    /// Dimension.
    pub fn n(&self) -> usize {
        self.d.len()
    }

    /// Number of eigenvalues strictly less than `x` (Sturm sequence count).
    pub fn count_below(&self, x: f64) -> usize {
        let mut count = 0usize;
        let mut q = self.d[0] - x;
        if q < 0.0 {
            count += 1;
        }
        for i in 1..self.n() {
            let e2 = self.e[i - 1] * self.e[i - 1];
            // Guard against exact zeros in the recurrence.
            let denom = if q.abs() < 1e-300 { 1e-300_f64.copysign(q + 1e-300) } else { q };
            q = (self.d[i] - x) - e2 / denom;
            if q < 0.0 {
                count += 1;
            }
        }
        count
    }

    /// Gershgorin interval containing the whole spectrum.
    pub fn spectrum_bounds(&self) -> (f64, f64) {
        let n = self.n();
        let mut lo = f64::INFINITY;
        let mut hi = f64::NEG_INFINITY;
        for i in 0..n {
            let mut r = 0.0;
            if i > 0 {
                r += self.e[i - 1].abs();
            }
            if i + 1 < n {
                r += self.e[i].abs();
            }
            lo = lo.min(self.d[i] - r);
            hi = hi.max(self.d[i] + r);
        }
        (lo, hi)
    }

    /// The `k`-th smallest eigenvalue (0-based), by bisection on the Sturm
    /// count.
    pub fn eigenvalue(&self, k: usize) -> f64 {
        assert!(k < self.n(), "eigenvalue index out of range");
        let (mut lo, mut hi) = self.spectrum_bounds();
        // widen slightly to avoid boundary ties
        let pad = 1e-8 * (hi - lo).abs().max(1.0);
        lo -= pad;
        hi += pad;
        for _ in 0..200 {
            let mid = 0.5 * (lo + hi);
            if self.count_below(mid) <= k {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi - lo < 1e-14 * hi.abs().max(1.0) {
                break;
            }
        }
        0.5 * (lo + hi)
    }

    /// Eigenvector for an eigenvalue estimate `lambda`, by inverse
    /// iteration; returned normalized to unit Euclidean norm.
    pub fn eigenvector(&self, lambda: f64) -> Vec<f64> {
        let n = self.n();
        // Shift slightly off the eigenvalue so T − λI is invertible.
        let shift = lambda + 1e-10 * lambda.abs().max(1.0);
        let m = Tridiag {
            sub: self.e.clone(),
            diag: self.d.iter().map(|&d| d - shift).collect(),
            sup: self.e.clone(),
        };
        let mut v: Vec<f64> = (0..n)
            .map(|i| ((i * 2654435761) % 1000) as f64 / 1000.0 + 0.1)
            .collect();
        normalize(&mut v);
        for _ in 0..6 {
            let mut w = solve_tridiag(&m, &v);
            normalize(&mut w);
            v = w;
        }
        // fix sign: make the largest-magnitude entry positive
        let mut imax = 0;
        for i in 1..n {
            if v[i].abs() > v[imax].abs() {
                imax = i;
            }
        }
        if v[imax] < 0.0 {
            for vi in v.iter_mut() {
                *vi = -*vi;
            }
        }
        v
    }
}

fn normalize(v: &mut [f64]) {
    let n = v.iter().map(|x| x * x).sum::<f64>().sqrt();
    if n > 0.0 {
        for vi in v.iter_mut() {
            *vi /= n;
        }
    }
}

/// First `k` eigenpairs (ascending) of a symmetric tridiagonal matrix.
pub fn symmetric_tridiagonal_eigen(m: &SymTridiag, k: usize) -> Vec<(f64, Vec<f64>)> {
    (0..k)
        .map(|i| {
            let lam = m.eigenvalue(i);
            (lam, m.eigenvector(lam))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// −∂²/∂x² on a uniform grid with Dirichlet BCs has exact eigenvalues
    /// (2 − 2cos(jπ/(n+1)))/h².
    fn laplacian(n: usize, h: f64) -> SymTridiag {
        SymTridiag {
            d: vec![2.0 / (h * h); n],
            e: vec![-1.0 / (h * h); n - 1],
        }
    }

    #[test]
    fn sturm_count_is_monotone_and_complete() {
        let m = laplacian(20, 1.0);
        let (lo, hi) = m.spectrum_bounds();
        assert_eq!(m.count_below(lo - 1.0), 0);
        assert_eq!(m.count_below(hi + 1.0), 20);
        let mut prev = 0;
        let mut x = lo;
        while x < hi {
            let c = m.count_below(x);
            assert!(c >= prev);
            prev = c;
            x += (hi - lo) / 37.0;
        }
    }

    #[test]
    fn laplacian_eigenvalues_match_closed_form() {
        let n = 50;
        let m = laplacian(n, 1.0);
        for j in 0..5 {
            let want = 2.0 - 2.0 * ((j + 1) as f64 * std::f64::consts::PI / (n + 1) as f64).cos();
            let got = m.eigenvalue(j);
            assert!((got - want).abs() < 1e-10, "j={j}: {got} vs {want}");
        }
    }

    #[test]
    fn eigenvector_satisfies_equation() {
        let n = 40;
        let m = laplacian(n, 0.5);
        for k in 0..3 {
            let lam = m.eigenvalue(k);
            let v = m.eigenvector(lam);
            // residual ‖Tv − λv‖ small
            let mut worst = 0.0f64;
            for i in 0..n {
                let mut tv = m.d[i] * v[i];
                if i > 0 {
                    tv += m.e[i - 1] * v[i - 1];
                }
                if i + 1 < n {
                    tv += m.e[i] * v[i + 1];
                }
                worst = worst.max((tv - lam * v[i]).abs());
            }
            assert!(worst < 1e-7, "k={k}: residual {worst}");
        }
    }

    #[test]
    fn eigenvectors_are_orthogonal() {
        let m = laplacian(30, 1.0);
        let pairs = symmetric_tridiagonal_eigen(&m, 4);
        for i in 0..4 {
            for j in 0..i {
                let dot: f64 = pairs[i].1.iter().zip(&pairs[j].1).map(|(a, b)| a * b).sum();
                assert!(dot.abs() < 1e-7, "({i},{j}) dot {dot}");
            }
        }
    }

    #[test]
    fn eigenvalues_are_sorted() {
        let m = SymTridiag {
            d: vec![3.0, -1.0, 2.0, 0.5, 4.0],
            e: vec![0.7, -0.2, 0.9, 0.1],
        };
        let vals: Vec<f64> = (0..5).map(|k| m.eigenvalue(k)).collect();
        for w in vals.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
        // trace check: Σλ = Σd
        let trace: f64 = m.d.iter().sum();
        let sum: f64 = vals.iter().sum();
        assert!((trace - sum).abs() < 1e-8, "{trace} vs {sum}");
    }
}
