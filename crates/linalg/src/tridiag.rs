//! Tridiagonal solvers (Thomas algorithm) over real and complex scalars,
//! and the Sherman–Morrison trick for cyclic systems.

use qpinn_dual::Complex64;

/// A real tridiagonal matrix stored as three diagonals: `sub` (length
/// n−1), `diag` (length n), `sup` (length n−1).
#[derive(Clone, Debug)]
pub struct Tridiag {
    /// Subdiagonal `a[i] = M[i+1, i]`.
    pub sub: Vec<f64>,
    /// Main diagonal.
    pub diag: Vec<f64>,
    /// Superdiagonal `c[i] = M[i, i+1]`.
    pub sup: Vec<f64>,
}

impl Tridiag {
    /// Dimension.
    pub fn n(&self) -> usize {
        self.diag.len()
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    /// Panics on a dimension mismatch.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let n = self.n();
        assert_eq!(x.len(), n);
        (0..n)
            .map(|i| {
                let mut s = self.diag[i] * x[i];
                if i > 0 {
                    s += self.sub[i - 1] * x[i - 1];
                }
                if i + 1 < n {
                    s += self.sup[i] * x[i + 1];
                }
                s
            })
            .collect()
    }
}

/// Solve a real tridiagonal system by the Thomas algorithm (no pivoting —
/// valid for the diagonally dominant systems produced by our
/// discretizations).
///
/// # Panics
/// Panics on dimension mismatches.
pub fn solve_tridiag(m: &Tridiag, rhs: &[f64]) -> Vec<f64> {
    let n = m.n();
    assert_eq!(rhs.len(), n, "rhs length");
    assert_eq!(m.sub.len(), n - 1);
    assert_eq!(m.sup.len(), n - 1);
    let mut c = vec![0.0; n];
    let mut d = vec![0.0; n];
    c[0] = m.sup.first().copied().unwrap_or(0.0) / m.diag[0];
    d[0] = rhs[0] / m.diag[0];
    for i in 1..n {
        let denom = m.diag[i] - m.sub[i - 1] * c[i - 1];
        if i + 1 < n {
            c[i] = m.sup[i] / denom;
        }
        d[i] = (rhs[i] - m.sub[i - 1] * d[i - 1]) / denom;
    }
    let mut x = vec![0.0; n];
    x[n - 1] = d[n - 1];
    for i in (0..n - 1).rev() {
        x[i] = d[i] - c[i] * x[i + 1];
    }
    x
}

/// Complex tridiagonal system with constant off-diagonals (the shape of the
/// Crank–Nicolson step matrix): `sub`/`sup` are scalars, `diag` varies.
///
/// # Panics
/// Panics on dimension mismatches.
pub fn solve_tridiag_complex(
    sub: Complex64,
    diag: &[Complex64],
    sup: Complex64,
    rhs: &[Complex64],
) -> Vec<Complex64> {
    let n = diag.len();
    assert_eq!(rhs.len(), n, "rhs length");
    let mut c = vec![Complex64::zero(); n];
    let mut d = vec![Complex64::zero(); n];
    c[0] = sup / diag[0];
    d[0] = rhs[0] / diag[0];
    for i in 1..n {
        let denom = diag[i] - sub * c[i - 1];
        c[i] = sup / denom;
        d[i] = (rhs[i] - sub * d[i - 1]) / denom;
    }
    let mut x = vec![Complex64::zero(); n];
    x[n - 1] = d[n - 1];
    for i in (0..n - 1).rev() {
        x[i] = d[i] - c[i] * x[i + 1];
    }
    x
}

/// Solve the cyclic complex tridiagonal system that arises from periodic
/// boundaries: constant `sub`/`sup` plus corner couplings `M[0, n−1] = sub`
/// and `M[n−1, 0] = sup`, via the Sherman–Morrison formula.
///
/// # Panics
/// Panics when `n < 3` or dimensions mismatch.
pub fn solve_cyclic_tridiag_complex(
    sub: Complex64,
    diag: &[Complex64],
    sup: Complex64,
    rhs: &[Complex64],
) -> Vec<Complex64> {
    let n = diag.len();
    assert!(n >= 3, "cyclic solve needs n ≥ 3");
    assert_eq!(rhs.len(), n);
    // Write M = T + u·vᵀ with u = (γ, 0, …, 0, sup)ᵀ, v = (1, 0, …, 0,
    // sub/γ)ᵀ; T equals M with corners removed and modified (0,0)/(n−1,n−1).
    let gamma = -diag[0];
    let mut tdiag = diag.to_vec();
    tdiag[0] = diag[0] - gamma;
    tdiag[n - 1] = diag[n - 1] - sub * sup / gamma;
    let y = solve_tridiag_complex(sub, &tdiag, sup, rhs);
    let mut u = vec![Complex64::zero(); n];
    u[0] = gamma;
    u[n - 1] = sup;
    let z = solve_tridiag_complex(sub, &tdiag, sup, &u);
    // vᵀy and vᵀz with v = (1, 0, …, 0, sub/γ).
    let vy = y[0] + sub / gamma * y[n - 1];
    let vz = z[0] + sub / gamma * z[n - 1];
    let factor = vy / (Complex64::one() + vz);
    (0..n).map(|i| y[i] - factor * z[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::{solve_dense, Dense};

    #[test]
    fn thomas_matches_dense_solver() {
        let m = Tridiag {
            sub: vec![1.0, -0.5, 2.0],
            diag: vec![4.0, 5.0, 6.0, 5.0],
            sup: vec![0.5, 1.0, -1.0],
        };
        let rhs = vec![1.0, -2.0, 3.0, 0.5];
        let x = solve_tridiag(&m, &rhs);
        // residual check
        let r = m.matvec(&x);
        for (ri, bi) in r.iter().zip(&rhs) {
            assert!((ri - bi).abs() < 1e-12);
        }
        // cross-check against dense Gaussian elimination
        let mut d = Dense::zeros(4);
        for i in 0..4 {
            d.set(i, i, m.diag[i]);
            if i > 0 {
                d.set(i, i - 1, m.sub[i - 1]);
            }
            if i < 3 {
                d.set(i, i + 1, m.sup[i]);
            }
        }
        let xd = solve_dense(&d, &rhs);
        for (a, b) in x.iter().zip(&xd) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn complex_thomas_residual() {
        let n = 16;
        let sub = Complex64::new(0.0, 0.25);
        let sup = Complex64::new(0.0, 0.25);
        let diag: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(2.0 + 0.1 * i as f64, -0.5))
            .collect();
        let rhs: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new((i as f64).sin(), (i as f64).cos()))
            .collect();
        let x = solve_tridiag_complex(sub, &diag, sup, &rhs);
        for i in 0..n {
            let mut r = diag[i] * x[i];
            if i > 0 {
                r += sub * x[i - 1];
            }
            if i + 1 < n {
                r += sup * x[i + 1];
            }
            assert!((r - rhs[i]).abs() < 1e-11, "row {i}");
        }
    }

    #[test]
    fn cyclic_solve_residual() {
        let n = 12;
        let sub = Complex64::new(-0.1, 0.3);
        let sup = Complex64::new(0.2, 0.15);
        let diag: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(3.0 + (i as f64 * 0.3).cos(), 0.4))
            .collect();
        let rhs: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(1.0 / (1.0 + i as f64), (i as f64 * 0.7).sin()))
            .collect();
        let x = solve_cyclic_tridiag_complex(sub, &diag, sup, &rhs);
        for i in 0..n {
            let mut r = diag[i] * x[i];
            r += sub * x[(i + n - 1) % n];
            r += sup * x[(i + 1) % n];
            assert!((r - rhs[i]).abs() < 1e-10, "row {i}: {:?}", r - rhs[i]);
        }
    }

    #[test]
    fn identity_system() {
        let m = Tridiag {
            sub: vec![0.0, 0.0],
            diag: vec![1.0, 1.0, 1.0],
            sup: vec![0.0, 0.0],
        };
        let x = solve_tridiag(&m, &[7.0, -3.0, 2.0]);
        assert_eq!(x, vec![7.0, -3.0, 2.0]);
    }
}
