//! Small dense matrices with Gaussian elimination — used as test oracles
//! and for the handful of tiny dense solves in the experiment harness.

/// A small square dense matrix (row-major).
#[derive(Clone, Debug)]
pub struct Dense {
    n: usize,
    a: Vec<f64>,
}

impl Dense {
    /// Zero matrix of size `n`.
    pub fn zeros(n: usize) -> Self {
        Dense { n, a: vec![0.0; n * n] }
    }

    /// Dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Entry `(i, j)`.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.a[i * self.n + j]
    }

    /// Set entry `(i, j)`.
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        self.a[i * self.n + j] = v;
    }

    /// Matrix-vector product.
    ///
    /// # Panics
    /// Panics on a dimension mismatch.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n);
        (0..self.n)
            .map(|i| {
                (0..self.n)
                    .map(|j| self.get(i, j) * x[j])
                    .sum()
            })
            .collect()
    }
}

/// Solve `A·x = b` by Gaussian elimination with partial pivoting.
///
/// # Panics
/// Panics on a singular matrix or dimension mismatch.
pub fn solve_dense(a: &Dense, b: &[f64]) -> Vec<f64> {
    let n = a.n();
    assert_eq!(b.len(), n);
    let mut m = a.a.clone();
    let mut x = b.to_vec();
    for col in 0..n {
        // pivot
        let mut piv = col;
        for r in col + 1..n {
            if m[r * n + col].abs() > m[piv * n + col].abs() {
                piv = r;
            }
        }
        assert!(m[piv * n + col].abs() > 1e-14, "singular matrix");
        if piv != col {
            for j in 0..n {
                m.swap(col * n + j, piv * n + j);
            }
            x.swap(col, piv);
        }
        let d = m[col * n + col];
        for r in col + 1..n {
            let f = m[r * n + col] / d;
            if f == 0.0 {
                continue;
            }
            for j in col..n {
                m[r * n + j] -= f * m[col * n + j];
            }
            x[r] -= f * x[col];
        }
    }
    for col in (0..n).rev() {
        let mut s = x[col];
        for j in col + 1..n {
            s -= m[col * n + j] * x[j];
        }
        x[col] = s / m[col * n + col];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_small_system() {
        let mut a = Dense::zeros(3);
        let rows = [[2.0, 1.0, -1.0], [-3.0, -1.0, 2.0], [-2.0, 1.0, 2.0]];
        for (i, r) in rows.iter().enumerate() {
            for (j, &v) in r.iter().enumerate() {
                a.set(i, j, v);
            }
        }
        let x = solve_dense(&a, &[8.0, -11.0, -3.0]);
        // classic system with solution (2, 3, -1)
        assert!((x[0] - 2.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
        assert!((x[2] + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let mut a = Dense::zeros(2);
        a.set(0, 0, 0.0);
        a.set(0, 1, 1.0);
        a.set(1, 0, 1.0);
        a.set(1, 1, 0.0);
        let x = solve_dense(&a, &[3.0, 5.0]);
        assert_eq!(x, vec![5.0, 3.0]);
    }

    #[test]
    fn residual_is_small_for_random_matrix() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(10);
        let n = 12;
        let mut a = Dense::zeros(n);
        for i in 0..n {
            for j in 0..n {
                a.set(i, j, rng.gen_range(-1.0..1.0));
            }
            // diagonal dominance for conditioning
            a.set(i, i, a.get(i, i) + 4.0);
        }
        let b: Vec<f64> = (0..n).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let x = solve_dense(&a, &b);
        for (ri, bi) in a.matvec(&x).iter().zip(&b) {
            assert!((ri - bi).abs() < 1e-11);
        }
    }

    #[test]
    #[should_panic]
    fn singular_matrix_panics() {
        let a = Dense::zeros(2);
        let _ = solve_dense(&a, &[1.0, 1.0]);
    }
}
