//! # qpinn-linalg
//!
//! The linear algebra the reference PDE solvers need, implemented from
//! scratch:
//!
//! * [`tridiag`] — Thomas-algorithm solvers for real and complex
//!   tridiagonal systems, plus a Sherman–Morrison wrapper for the cyclic
//!   (periodic-boundary) variant;
//! * [`eigen`] — eigenvalues of symmetric tridiagonal matrices by Sturm
//!   sequence bisection and eigenvectors by inverse iteration (the
//!   discretized 1D Hamiltonian is exactly such a matrix);
//! * [`dense`] — small dense helpers (Gaussian elimination with partial
//!   pivoting) used as test oracles.

#![deny(missing_docs)]

pub mod dense;
pub mod eigen;
pub mod tridiag;

pub use eigen::{symmetric_tridiagonal_eigen, SymTridiag};
pub use tridiag::{solve_cyclic_tridiag_complex, solve_tridiag, solve_tridiag_complex, Tridiag};
