//! Dual numbers for exact forward-mode differentiation.
//!
//! A [`Dual`] value `a + b·ε` with `ε² = 0` propagates the exact directional
//! derivative `b` of every computation alongside the value `a`. Because
//! [`Dual`] is generic over any [`Scalar`], nesting it as
//! `Dual<Dual<f64>>` (aliased [`HyperDual64`]) yields exact *mixed second*
//! derivatives: seed `re.eps` with direction `u` and `eps.re` with direction
//! `v`, and the `eps.eps` slot of the result holds `uᵀ·H·v` where `H` is the
//! Hessian.

use crate::scalar::Scalar;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A dual number `re + eps·ε` over an arbitrary scalar.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Dual<S> {
    /// Primal part.
    pub re: S,
    /// Derivative (infinitesimal) part.
    pub eps: S,
}

/// First-order dual over `f64`: carries one exact directional derivative.
pub type Dual64 = Dual<f64>;

/// Second-order (hyper-)dual over `f64`: carries two directional first
/// derivatives and one exact mixed second derivative.
pub type HyperDual64 = Dual<Dual<f64>>;

impl<S: Scalar> Dual<S> {
    /// A constant (zero derivative part).
    #[inline]
    pub fn constant(re: S) -> Self {
        Dual {
            re,
            eps: S::zero(),
        }
    }

    /// A variable seeded with unit derivative.
    #[inline]
    pub fn variable(re: S) -> Self {
        Dual { re, eps: S::one() }
    }

    /// Construct from explicit parts.
    #[inline]
    pub fn new(re: S, eps: S) -> Self {
        Dual { re, eps }
    }
}

impl Dual64 {
    /// Seed a plain float as a variable: `x + 1·ε`.
    #[inline]
    pub fn var(x: f64) -> Self {
        Dual::variable(x)
    }
}

impl HyperDual64 {
    /// Seed for a mixed second derivative: first derivative direction in the
    /// outer ε, second in the inner ε, so that `.eps.eps` of the result is
    /// the exact `∂²f/∂u∂v` contraction of the two seeds.
    #[inline]
    pub fn seed(x: f64, du: f64, dv: f64) -> Self {
        Dual {
            re: Dual { re: x, eps: dv },
            eps: Dual { re: du, eps: 0.0 },
        }
    }

    /// The primal value.
    #[inline]
    pub fn v(self) -> f64 {
        self.re.re
    }

    /// The first derivative along the outer seed direction.
    #[inline]
    pub fn d_outer(self) -> f64 {
        self.eps.re
    }

    /// The first derivative along the inner seed direction.
    #[inline]
    pub fn d_inner(self) -> f64 {
        self.re.eps
    }

    /// The exact mixed second derivative.
    #[inline]
    pub fn dd(self) -> f64 {
        self.eps.eps
    }
}

impl<S: Scalar> Add for Dual<S> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Dual {
            re: self.re + rhs.re,
            eps: self.eps + rhs.eps,
        }
    }
}

impl<S: Scalar> Sub for Dual<S> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Dual {
            re: self.re - rhs.re,
            eps: self.eps - rhs.eps,
        }
    }
}

impl<S: Scalar> Mul for Dual<S> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Dual {
            re: self.re * rhs.re,
            eps: self.re * rhs.eps + self.eps * rhs.re,
        }
    }
}

impl<S: Scalar> Div for Dual<S> {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        let inv = rhs.re.recip();
        let re = self.re * inv;
        Dual {
            re,
            eps: (self.eps - re * rhs.eps) * inv,
        }
    }
}

impl<S: Scalar> Neg for Dual<S> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Dual {
            re: -self.re,
            eps: -self.eps,
        }
    }
}

impl<S: Scalar> AddAssign for Dual<S> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl<S: Scalar> SubAssign for Dual<S> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl<S: Scalar> MulAssign for Dual<S> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}
impl<S: Scalar> DivAssign for Dual<S> {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

impl<S: Scalar> Scalar for Dual<S> {
    #[inline]
    fn zero() -> Self {
        Dual::constant(S::zero())
    }
    #[inline]
    fn one() -> Self {
        Dual::constant(S::one())
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        Dual::constant(S::from_f64(x))
    }
    #[inline]
    fn value(&self) -> f64 {
        self.re.value()
    }
    #[inline]
    fn sin(self) -> Self {
        Dual {
            re: self.re.sin(),
            eps: self.eps * self.re.cos(),
        }
    }
    #[inline]
    fn cos(self) -> Self {
        Dual {
            re: self.re.cos(),
            eps: -(self.eps * self.re.sin()),
        }
    }
    #[inline]
    fn exp(self) -> Self {
        let e = self.re.exp();
        Dual {
            re: e,
            eps: self.eps * e,
        }
    }
    #[inline]
    fn ln(self) -> Self {
        Dual {
            re: self.re.ln(),
            eps: self.eps / self.re,
        }
    }
    #[inline]
    fn sqrt(self) -> Self {
        let r = self.re.sqrt();
        Dual {
            re: r,
            eps: self.eps / (r + r),
        }
    }
    #[inline]
    fn tanh(self) -> Self {
        let t = self.re.tanh();
        Dual {
            re: t,
            eps: self.eps * (S::one() - t * t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite difference, for cross-checking exact duals.
    fn fd(f: impl Fn(f64) -> f64, x: f64) -> f64 {
        let h = 1e-6;
        (f(x + h) - f(x - h)) / (2.0 * h)
    }

    fn check_unary(f_dual: impl Fn(Dual64) -> Dual64, f: impl Fn(f64) -> f64 + Copy, x: f64) {
        let d = f_dual(Dual64::var(x));
        assert!(
            (d.re - f(x)).abs() < 1e-12,
            "value mismatch at {x}: {} vs {}",
            d.re,
            f(x)
        );
        let want = fd(f, x);
        assert!(
            (d.eps - want).abs() < 1e-6 * want.abs().max(1.0),
            "derivative mismatch at {x}: {} vs {}",
            d.eps,
            want
        );
    }

    #[test]
    fn elementary_derivatives() {
        for &x in &[0.2, 0.9, 1.7] {
            check_unary(|d| d.sin(), |x| x.sin(), x);
            check_unary(|d| d.cos(), |x| x.cos(), x);
            check_unary(|d| d.exp(), |x| x.exp(), x);
            check_unary(|d| d.ln(), |x| x.ln(), x);
            check_unary(|d| d.sqrt(), |x| x.sqrt(), x);
            check_unary(|d| d.tanh(), |x| x.tanh(), x);
            check_unary(|d| d.recip(), |x| 1.0 / x, x);
            check_unary(|d| d.powi(3), |x| x.powi(3), x);
            check_unary(|d| d.powi(-2), |x| x.powi(-2), x);
        }
    }

    #[test]
    fn product_and_quotient_rules() {
        let x = 1.3;
        let f = |x: f64| (x.sin() * x.exp()) / (1.0 + x * x);
        let d = {
            let d = Dual64::var(x);
            (d.sin() * d.exp()) / (Dual64::constant(1.0) + d * d)
        };
        assert!((d.re - f(x)).abs() < 1e-14);
        assert!((d.eps - fd(f, x)).abs() < 1e-6);
    }

    #[test]
    fn hyperdual_mixed_second_derivative() {
        // f(x) = sin(x) * exp(x): f'' = 2 cos(x) e^x.
        let x = 0.8;
        let h = HyperDual64::seed(x, 1.0, 1.0);
        let r = h.sin() * h.exp();
        let want_dd = 2.0 * x.cos() * x.exp();
        assert!((r.v() - x.sin() * x.exp()).abs() < 1e-14);
        assert!((r.d_outer() - (x.cos() + x.sin()) * x.exp()).abs() < 1e-12);
        assert!((r.d_inner() - (x.cos() + x.sin()) * x.exp()).abs() < 1e-12);
        assert!(
            (r.dd() - want_dd).abs() < 1e-12,
            "dd {} want {}",
            r.dd(),
            want_dd
        );
    }

    #[test]
    fn hyperdual_cross_partial() {
        // f(x, y) = x² y³ at (2, 3): ∂²f/∂x∂y = 2x·3y² = 108.
        let x = HyperDual64::seed(2.0, 1.0, 0.0);
        let y = HyperDual64::seed(3.0, 0.0, 1.0);
        let f = x * x * y * y * y;
        assert!((f.v() - 108.0).abs() < 1e-12);
        assert!((f.dd() - 108.0).abs() < 1e-12);
    }

    #[test]
    fn hyperdual_tanh_second_derivative() {
        // tanh'' = -2 tanh (1 - tanh²).
        let x = 0.45;
        let h = HyperDual64::seed(x, 1.0, 1.0).tanh();
        let t = x.tanh();
        let want = -2.0 * t * (1.0 - t * t);
        assert!((h.dd() - want).abs() < 1e-12);
    }

    #[test]
    fn assign_ops() {
        let mut a = Dual64::var(2.0);
        a += Dual64::constant(1.0);
        a *= Dual64::constant(3.0);
        a -= Dual64::constant(2.0);
        a /= Dual64::constant(2.0);
        assert!((a.re - 3.5).abs() < 1e-15);
        assert!((a.eps - 1.5).abs() < 1e-15);
    }
}
