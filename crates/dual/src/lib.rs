//! # qpinn-dual
//!
//! Scalar abstractions for exact forward-mode differentiation and complex
//! arithmetic, shared by the FFT, linear-algebra, PDE-solver, and
//! quantum-circuit crates.
//!
//! The crate provides three building blocks:
//!
//! * [`Scalar`] — a numeric trait implemented by `f64`, [`Dual`], and nested
//!   duals. Algorithms written against `Scalar` (e.g. the statevector
//!   simulator in `qpinn-qcircuit`) can be evaluated with plain floats or
//!   with derivative-carrying numbers without any code changes.
//! * [`Dual`] — a first-order dual number `a + b·ε` (`ε² = 0`). Running an
//!   algorithm on `Dual` values whose `eps` slot seeds a direction yields the
//!   exact directional derivative of the output. [`HyperDual64`] (a dual of
//!   duals) carries exact mixed second derivatives.
//! * [`Cplx`] — a complex number generic over its scalar type, so complex
//!   algorithms (FFT, Schrödinger propagators, quantum gates) are also
//!   differentiable by instantiation.
//!
//! All derivatives obtained this way are exact to machine precision — there
//! is no truncation error, unlike finite differences.
//!
//! ```
//! use qpinn_dual::{Dual64, Scalar};
//! // d/dx sin(x²) at x = 0.7, exactly:
//! let x = Dual64::var(0.7);
//! let y = (x * x).sin();
//! assert!((y.eps - 2.0 * 0.7 * (0.7f64 * 0.7).cos()).abs() < 1e-15);
//! ```

#![deny(missing_docs)]

pub mod complex;
pub mod dual;
pub mod scalar;

pub use complex::{Complex64, Cplx};
pub use dual::{Dual, Dual64, HyperDual64};
pub use scalar::Scalar;

#[cfg(test)]
mod proptests;
