//! The [`Scalar`] trait: the numeric interface shared by `f64` and dual
//! numbers.
//!
//! Algorithms in downstream crates (statevector simulation, propagators,
//! special functions) are written once against this trait and instantiated
//! with `f64` for plain evaluation or with [`crate::Dual`] /
//! [`crate::HyperDual64`] for exact forward-mode derivatives.

use core::fmt::Debug;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A real scalar supporting the elementary functions needed by the
/// simulation and solver crates.
///
/// Implementations must satisfy the usual field axioms on the primal part
/// and propagate derivatives consistently (for dual types). The `value`
/// accessor returns the primal (0th-order) part so that generic code can
/// make branching decisions (e.g. pivoting) on the underlying float.
pub trait Scalar:
    Copy
    + Clone
    + Debug
    + PartialEq
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
    + AddAssign
    + SubAssign
    + MulAssign
    + DivAssign
    + Send
    + Sync
    + 'static
{
    /// Additive identity.
    fn zero() -> Self;
    /// Multiplicative identity.
    fn one() -> Self;
    /// Lift a plain float into this scalar type (derivative parts zero).
    fn from_f64(x: f64) -> Self;
    /// The primal (value) part as a plain float.
    fn value(&self) -> f64;
    /// Sine.
    fn sin(self) -> Self;
    /// Cosine.
    fn cos(self) -> Self;
    /// Natural exponential.
    fn exp(self) -> Self;
    /// Natural logarithm. Undefined for non-positive primal parts.
    fn ln(self) -> Self;
    /// Square root. Undefined for negative primal parts.
    fn sqrt(self) -> Self;
    /// Hyperbolic tangent.
    fn tanh(self) -> Self;
    /// Multiplicative inverse.
    fn recip(self) -> Self {
        Self::one() / self
    }
    /// Integer power by repeated squaring (negative exponents allowed).
    fn powi(self, n: i32) -> Self {
        if n < 0 {
            return self.powi(-n).recip();
        }
        let mut base = self;
        let mut acc = Self::one();
        let mut k = n as u32;
        while k > 0 {
            if k & 1 == 1 {
                acc *= base;
            }
            base *= base;
            k >>= 1;
        }
        acc
    }
    /// `self * a + b`, the fused shape used in inner loops.
    fn mul_add(self, a: Self, b: Self) -> Self {
        self * a + b
    }
}

impl Scalar for f64 {
    #[inline]
    fn zero() -> Self {
        0.0
    }
    #[inline]
    fn one() -> Self {
        1.0
    }
    #[inline]
    fn from_f64(x: f64) -> Self {
        x
    }
    #[inline]
    fn value(&self) -> f64 {
        *self
    }
    #[inline]
    fn sin(self) -> Self {
        f64::sin(self)
    }
    #[inline]
    fn cos(self) -> Self {
        f64::cos(self)
    }
    #[inline]
    fn exp(self) -> Self {
        f64::exp(self)
    }
    #[inline]
    fn ln(self) -> Self {
        f64::ln(self)
    }
    #[inline]
    fn sqrt(self) -> Self {
        f64::sqrt(self)
    }
    #[inline]
    fn tanh(self) -> Self {
        f64::tanh(self)
    }
    #[inline]
    fn mul_add(self, a: Self, b: Self) -> Self {
        f64::mul_add(self, a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f64_identities() {
        assert_eq!(<f64 as Scalar>::zero(), 0.0);
        assert_eq!(<f64 as Scalar>::one(), 1.0);
        assert_eq!(<f64 as Scalar>::from_f64(2.5), 2.5);
        assert_eq!(Scalar::value(&3.25), 3.25);
    }

    #[test]
    fn powi_matches_std() {
        for &x in &[0.3, 1.7, -2.2] {
            for n in -4..=6 {
                let got = Scalar::powi(x, n);
                let want = f64::powi(x, n);
                assert!(
                    (got - want).abs() <= 1e-12 * want.abs().max(1.0),
                    "x={x} n={n} got={got} want={want}"
                );
            }
        }
    }

    #[test]
    fn recip_default() {
        assert!((Scalar::recip(4.0) - 0.25).abs() < 1e-15);
    }

    #[test]
    fn elementary_functions_delegate() {
        let x = 0.7_f64;
        assert_eq!(Scalar::sin(x), x.sin());
        assert_eq!(Scalar::cos(x), x.cos());
        assert_eq!(Scalar::exp(x), x.exp());
        assert_eq!(Scalar::ln(x), x.ln());
        assert_eq!(Scalar::sqrt(x), x.sqrt());
        assert_eq!(Scalar::tanh(x), x.tanh());
    }
}
