//! Complex numbers generic over a [`Scalar`].
//!
//! [`Cplx<S>`] is used with `S = f64` ([`Complex64`]) throughout the FFT,
//! tridiagonal-solver, and Schrödinger-propagator crates, and with dual
//! scalars inside the quantum-circuit simulator to obtain exact derivatives
//! of measurement expectation values.

use crate::scalar::Scalar;
use core::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number `re + i·im` over scalar type `S`.
///
/// `repr(C)` guarantees the `[re, im]` memory layout, which the
/// statevector simulator's f64 SIMD fast path relies on to reinterpret
/// `&[Cplx<f64>]` as interleaved doubles.
#[derive(Clone, Copy, Debug, PartialEq)]
#[repr(C)]
pub struct Cplx<S> {
    /// Real part.
    pub re: S,
    /// Imaginary part.
    pub im: S,
}

/// Plain double-precision complex number.
pub type Complex64 = Cplx<f64>;

impl<S: Scalar> Cplx<S> {
    /// Construct from parts.
    #[inline]
    pub fn new(re: S, im: S) -> Self {
        Cplx { re, im }
    }

    /// Zero.
    #[inline]
    pub fn zero() -> Self {
        Cplx {
            re: S::zero(),
            im: S::zero(),
        }
    }

    /// One.
    #[inline]
    pub fn one() -> Self {
        Cplx {
            re: S::one(),
            im: S::zero(),
        }
    }

    /// The imaginary unit.
    #[inline]
    pub fn i() -> Self {
        Cplx {
            re: S::zero(),
            im: S::one(),
        }
    }

    /// Lift a real scalar.
    #[inline]
    pub fn from_real(re: S) -> Self {
        Cplx {
            re,
            im: S::zero(),
        }
    }

    /// Lift a plain float.
    #[inline]
    pub fn from_f64(x: f64) -> Self {
        Self::from_real(S::from_f64(x))
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Cplx {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `re² + im²`.
    #[inline]
    pub fn norm_sqr(self) -> S {
        self.re * self.re + self.im * self.im
    }

    /// Modulus.
    #[inline]
    pub fn abs(self) -> S {
        self.norm_sqr().sqrt()
    }

    /// Multiply by a real scalar.
    #[inline]
    pub fn scale(self, s: S) -> Self {
        Cplx {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Multiplicative inverse.
    #[inline]
    pub fn recip(self) -> Self {
        let d = self.norm_sqr().recip();
        Cplx {
            re: self.re * d,
            im: -(self.im * d),
        }
    }

    /// `e^{iθ} = cos θ + i sin θ` for a real angle θ.
    #[inline]
    pub fn cis(theta: S) -> Self {
        Cplx {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Complex exponential `e^{re} (cos im + i sin im)`.
    #[inline]
    pub fn exp(self) -> Self {
        let m = self.re.exp();
        Cplx {
            re: m * self.im.cos(),
            im: m * self.im.sin(),
        }
    }

    /// Fused multiply-add: `self * b + c`.
    #[inline]
    pub fn mul_add(self, b: Self, c: Self) -> Self {
        Cplx {
            re: self.re * b.re - self.im * b.im + c.re,
            im: self.re * b.im + self.im * b.re + c.im,
        }
    }
}

impl Complex64 {
    /// Polar form `r·e^{iθ}`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Cplx {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Argument (phase) in `(-π, π]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Principal square root (`√r · e^{iθ/2}`).
    #[inline]
    pub fn sqrt(self) -> Self {
        Complex64::from_polar(self.abs().sqrt(), 0.5 * self.arg())
    }
}

impl<S: Scalar> Add for Cplx<S> {
    type Output = Self;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Cplx {
            re: self.re + rhs.re,
            im: self.im + rhs.im,
        }
    }
}

impl<S: Scalar> Sub for Cplx<S> {
    type Output = Self;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Cplx {
            re: self.re - rhs.re,
            im: self.im - rhs.im,
        }
    }
}

impl<S: Scalar> Mul for Cplx<S> {
    type Output = Self;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Cplx {
            re: self.re * rhs.re - self.im * rhs.im,
            im: self.re * rhs.im + self.im * rhs.re,
        }
    }
}

impl<S: Scalar> Div for Cplx<S> {
    type Output = Self;
    #[inline]
    fn div(self, rhs: Self) -> Self {
        self * rhs.recip()
    }
}

impl<S: Scalar> Neg for Cplx<S> {
    type Output = Self;
    #[inline]
    fn neg(self) -> Self {
        Cplx {
            re: -self.re,
            im: -self.im,
        }
    }
}

impl<S: Scalar> AddAssign for Cplx<S> {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}
impl<S: Scalar> SubAssign for Cplx<S> {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}
impl<S: Scalar> MulAssign for Cplx<S> {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}
impl<S: Scalar> DivAssign for Cplx<S> {
    #[inline]
    fn div_assign(&mut self, rhs: Self) {
        *self = *self / rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dual::Dual64;

    const EPS: f64 = 1e-14;

    #[test]
    fn field_operations() {
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(-0.5, 1.5);
        let p = a * b;
        assert!((p.re - (1.0 * -0.5 - 2.0 * 1.5)).abs() < EPS);
        assert!((p.im - (1.0 * 1.5 + 2.0 * -0.5)).abs() < EPS);
        let q = p / b;
        assert!((q.re - a.re).abs() < 1e-12 && (q.im - a.im).abs() < 1e-12);
    }

    #[test]
    fn conjugate_and_norm() {
        let a = Complex64::new(3.0, -4.0);
        assert!((a.norm_sqr() - 25.0).abs() < EPS);
        assert!((a.abs() - 5.0).abs() < EPS);
        let c = a * a.conj();
        assert!((c.re - 25.0).abs() < EPS && c.im.abs() < EPS);
    }

    #[test]
    fn cis_and_polar() {
        let t = 0.7;
        let e = Complex64::cis(t);
        assert!((e.abs() - 1.0).abs() < EPS);
        assert!((e.arg() - t).abs() < EPS);
        let p = Complex64::from_polar(2.0, -1.1);
        assert!((p.abs() - 2.0).abs() < EPS);
        assert!((p.arg() + 1.1).abs() < EPS);
    }

    #[test]
    fn exp_euler_identity() {
        // e^{iπ} = -1.
        let e = Complex64::new(0.0, std::f64::consts::PI).exp();
        assert!((e.re + 1.0).abs() < 1e-12 && e.im.abs() < 1e-12);
    }

    #[test]
    fn mul_add_matches_composition() {
        let a = Complex64::new(0.2, -0.3);
        let b = Complex64::new(1.4, 0.9);
        let c = Complex64::new(-0.8, 0.1);
        let f = a.mul_add(b, c);
        let g = a * b + c;
        assert!((f.re - g.re).abs() < EPS && (f.im - g.im).abs() < EPS);
    }

    #[test]
    fn differentiable_phase_rotation() {
        // d/dθ |⟨1| e^{iθ} |1⟩|² is zero; but d/dθ Re(e^{iθ}) = -sin θ.
        let theta = 0.4;
        let d = Cplx::<Dual64>::cis(Dual64::var(theta));
        assert!((d.re.re - theta.cos()).abs() < EPS);
        assert!((d.re.eps + theta.sin()).abs() < EPS);
        assert!((d.im.eps - theta.cos()).abs() < EPS);
    }
}
