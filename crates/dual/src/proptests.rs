//! Property-based tests for the dual/complex algebra.

use crate::{Complex64, Cplx, Dual64, HyperDual64, Scalar};
use proptest::prelude::*;

fn small_f64() -> impl Strategy<Value = f64> {
    // Keep magnitudes moderate so transcendental identities hold to tight
    // tolerances without overflow.
    (-3.0..3.0f64).prop_filter("finite", |x| x.is_finite())
}

fn nonzero_f64() -> impl Strategy<Value = f64> {
    small_f64().prop_filter("away from zero", |x| x.abs() > 0.1)
}

proptest! {
    #[test]
    fn dual_addition_commutes(a in small_f64(), b in small_f64(), da in small_f64(), db in small_f64()) {
        let x = Dual64::new(a, da);
        let y = Dual64::new(b, db);
        prop_assert_eq!(x + y, y + x);
    }

    #[test]
    fn dual_product_rule_exact(a in small_f64(), b in small_f64()) {
        // (x·c)' at x=a with constant c=b must equal b exactly.
        let x = Dual64::var(a);
        let c = Dual64::constant(b);
        let p = x * c;
        prop_assert!((p.eps - b).abs() < 1e-15);
    }

    #[test]
    fn dual_chain_rule_sin_exp(a in small_f64()) {
        // d/dx sin(exp(x)) = cos(exp(x))·exp(x).
        let d = Dual64::var(a).exp().sin();
        let want = a.exp().cos() * a.exp();
        prop_assert!((d.eps - want).abs() < 1e-10 * want.abs().max(1.0));
    }

    #[test]
    fn dual_division_inverts_multiplication(a in nonzero_f64(), b in nonzero_f64(), da in small_f64(), db in small_f64()) {
        let x = Dual64::new(a, da);
        let y = Dual64::new(b, db);
        let z = (x * y) / y;
        prop_assert!((z.re - x.re).abs() < 1e-10);
        prop_assert!((z.eps - x.eps).abs() < 1e-9);
    }

    #[test]
    fn hyperdual_symmetry_of_second_derivative(a in small_f64()) {
        // For f(x) = tanh(x)·exp(x) the mixed second derivative with both
        // seeds along x equals the ordinary second derivative; check against
        // a high-order finite difference.
        let f = |x: f64| x.tanh() * x.exp();
        let h = 1e-4;
        let fd2 = (f(a + h) - 2.0 * f(a) + f(a - h)) / (h * h);
        let hd = HyperDual64::seed(a, 1.0, 1.0);
        let r = hd.tanh() * hd.exp();
        prop_assert!((r.dd() - fd2).abs() < 1e-5 * fd2.abs().max(1.0));
    }

    #[test]
    fn complex_multiplication_is_associative(
        ar in small_f64(), ai in small_f64(),
        br in small_f64(), bi in small_f64(),
        cr in small_f64(), ci in small_f64(),
    ) {
        let a = Complex64::new(ar, ai);
        let b = Complex64::new(br, bi);
        let c = Complex64::new(cr, ci);
        let lhs = (a * b) * c;
        let rhs = a * (b * c);
        prop_assert!((lhs.re - rhs.re).abs() < 1e-10);
        prop_assert!((lhs.im - rhs.im).abs() < 1e-10);
    }

    #[test]
    fn complex_norm_is_multiplicative(ar in small_f64(), ai in small_f64(), br in small_f64(), bi in small_f64()) {
        let a = Complex64::new(ar, ai);
        let b = Complex64::new(br, bi);
        let lhs = (a * b).norm_sqr();
        let rhs = a.norm_sqr() * b.norm_sqr();
        prop_assert!((lhs - rhs).abs() < 1e-9 * rhs.abs().max(1.0));
    }

    #[test]
    fn cis_is_unit_modulus(theta in -10.0..10.0f64) {
        let e = Complex64::cis(theta);
        prop_assert!((e.norm_sqr() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dual_complex_phase_derivative(theta in small_f64()) {
        // d/dθ e^{iθ} = i e^{iθ}, component-wise.
        let d = Cplx::<Dual64>::cis(Dual64::var(theta));
        prop_assert!((d.re.eps + theta.sin()).abs() < 1e-12);
        prop_assert!((d.im.eps - theta.cos()).abs() < 1e-12);
    }

    #[test]
    fn powi_consistent_with_repeated_multiplication(a in nonzero_f64(), n in 0i32..6) {
        let d = Dual64::var(a);
        let mut acc = Dual64::constant(1.0);
        for _ in 0..n {
            acc *= d;
        }
        let p = d.powi(n);
        prop_assert!((p.re - acc.re).abs() < 1e-10 * acc.re.abs().max(1.0));
        prop_assert!((p.eps - acc.eps).abs() < 1e-9 * acc.eps.abs().max(1.0));
    }

    #[test]
    fn scalar_lift_roundtrip(a in small_f64()) {
        let d: Dual64 = Scalar::from_f64(a);
        prop_assert_eq!(d.value(), a);
        let h: HyperDual64 = Scalar::from_f64(a);
        prop_assert_eq!(h.value(), a);
        let c: Cplx<Dual64> = Cplx::from_f64(a);
        prop_assert_eq!(c.re.value(), a);
    }
}
