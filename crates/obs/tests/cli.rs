//! End-to-end tests of the `qpinn-obs` binary: real process spawns, real
//! files, real exit codes — the same contract CI relies on.

use std::path::PathBuf;
use std::process::{Command, Output};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qpinn-obs"))
}

fn tmp(name: &str, content: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("qpinn-obs-cli-{}-{name}", std::process::id()));
    std::fs::write(&path, content).unwrap();
    path
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

const BASELINE: &str = r#"{"id":"F5_SCALING","host_cpus":4,"threads":[1,2],
  "s_per_epoch":[0.138,0.116],"speedup":[1.0,1.19],
  "matmul_gflops":[7.66,7.41],"circuits_per_s":[1504534.9,525605.9]}"#;

#[test]
fn check_exits_zero_when_within_threshold() {
    let base = tmp("base-ok.json", BASELINE);
    let cur = tmp(
        "cur-ok.json",
        &BASELINE.replace("7.66", "7.40"), // −3.4%, inside 10%
    );
    let out = bin()
        .args(["check", "--baseline"])
        .arg(&base)
        .arg("--current")
        .arg(&cur)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stdout(&out));
    assert!(stdout(&out).contains("PASS"), "{}", stdout(&out));
}

#[test]
fn check_exits_nonzero_on_injected_regression() {
    let base = tmp("base-reg.json", BASELINE);
    // Halve matmul throughput: an unambiguous regression.
    let cur = tmp("cur-reg.json", &BASELINE.replace("7.66", "3.83"));
    let out = bin()
        .args(["check", "--baseline"])
        .arg(&base)
        .arg("--current")
        .arg(&cur)
        .args(["--threshold", "10"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("REGRESSED"), "{text}");
    assert!(text.contains("matmul_gflops[0]"), "{text}");
    assert!(text.contains("FAIL"), "{text}");
}

#[test]
fn usage_and_io_errors_exit_two() {
    // No arguments → usage on stderr, exit 2.
    let out = bin().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("USAGE"));
    // Missing file → exit 2.
    let out = bin()
        .args(["flame", "/nonexistent/run.jsonl"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Unknown command → exit 2.
    let out = bin().args(["frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn check_exits_two_on_empty_record_files() {
    // An empty file is a parse error, not a silent pass: exit 2.
    let empty = tmp("empty.json", "");
    let base = tmp("base-vs-empty.json", BASELINE);
    for (b, c) in [(&empty, &base), (&base, &empty)] {
        let out = bin()
            .args(["check", "--baseline"])
            .arg(b)
            .arg("--current")
            .arg(c)
            .output()
            .unwrap();
        assert_eq!(out.status.code(), Some(2), "empty input must exit 2");
        assert!(String::from_utf8_lossy(&out.stderr).contains("error"));
    }
}

#[test]
fn check_with_disjoint_keys_reports_nothing_comparable_and_passes() {
    // No key appears in both records: nothing regressed, nothing proven —
    // the gate passes (exit 0) but says so explicitly.
    let base = tmp("base-disjoint.json", r#"{"alpha_gflops":[5.0]}"#);
    let cur = tmp("cur-disjoint.json", r#"{"beta_gflops":[9.0]}"#);
    let out = bin()
        .args(["check", "--baseline"])
        .arg(&base)
        .arg("--current")
        .arg(&cur)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("no comparable perf metrics"), "{text}");
    assert!(!text.contains("REGRESSED"), "{text}");
}

#[test]
fn check_skips_zero_baseline_metrics_instead_of_dividing() {
    // A 0.0 baseline would make the relative delta infinite; the gate must
    // skip that entry (no division by zero) and judge only the rest.
    let base = tmp(
        "base-zero.json",
        r#"{"warm_gflops":[0.0],"matmul_gflops":[8.0]}"#,
    );
    let cur = tmp(
        "cur-zero.json",
        r#"{"warm_gflops":[4.0],"matmul_gflops":[7.9]}"#,
    );
    let out = bin()
        .args(["check", "--baseline"])
        .arg(&base)
        .arg("--current")
        .arg(&cur)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(!text.contains("inf"), "zero baseline leaked a division: {text}");
    assert!(text.contains("PASS"), "{text}");

    // Same zero baseline, but the surviving metric genuinely regressed:
    // the skip must not mask a real regression elsewhere.
    let cur_bad = tmp(
        "cur-zero-bad.json",
        r#"{"warm_gflops":[4.0],"matmul_gflops":[2.0]}"#,
    );
    let out = bin()
        .args(["check", "--baseline"])
        .arg(&base)
        .arg("--current")
        .arg(&cur_bad)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
}

#[test]
fn check_usage_errors_exit_two() {
    // Missing --current.
    let base = tmp("base-lonely.json", BASELINE);
    let out = bin()
        .args(["check", "--baseline"])
        .arg(&base)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    // Malformed threshold.
    let out = bin()
        .args(["check", "--baseline"])
        .arg(&base)
        .arg("--current")
        .arg(&base)
        .args(["--threshold", "-5"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn trace_flame_pool_run_over_one_stream() {
    let jsonl = concat!(
        r#"{"v":1,"ts_ns":5000,"kind":"span","name":"forward","thread":"main","fields":{"path":"epoch/loss/forward","dur_ns":3000}}"#,
        "\n",
        r#"{"v":1,"ts_ns":9000,"kind":"span","name":"epoch","thread":"main","fields":{"path":"epoch","dur_ns":8000}}"#,
        "\n",
        r#"{"v":1,"ts_ns":9500,"kind":"mark","name":"pool_stats","thread":"main","fields":{"context":"t","workers":1,"launcher_tasks":3,"launcher_steals":0,"sets_launched":2,"worker0.tasks":5,"worker0.steals":1,"worker0.idle_waits":0}}"#,
        "\n",
    );
    let run = tmp("run.jsonl", jsonl);
    let trace_out = std::env::temp_dir().join(format!(
        "qpinn-obs-cli-{}-trace-out.json",
        std::process::id()
    ));

    let out = bin().arg("trace").arg(&run).arg("-o").arg(&trace_out).output().unwrap();
    assert!(out.status.success());
    let written = std::fs::read_to_string(&trace_out).unwrap();
    assert!(written.contains("\"traceEvents\""), "{written}");
    assert!(written.contains("\"ph\":\"X\""), "{written}");

    let out = bin().args(["flame"]).arg(&run).args(["--top", "5"]).output().unwrap();
    assert!(out.status.success());
    assert!(stdout(&out).contains("epoch/loss/forward"), "{}", stdout(&out));

    let out = bin().arg("pool").arg(&run).output().unwrap();
    assert!(out.status.success());
    assert!(stdout(&out).contains("steal ratio"), "{}", stdout(&out));
}

/// Build a synthetic two-run `qpinn-run-v1` store on disk: a converged
/// baseline and a worse, differently-configured current run.
fn run_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("qpinn-obs-cli-{}-{tag}-store", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let manifest = |id: &str, lr: f64, hash: &str, final_loss: f64| {
        format!(
            concat!(
                r#"{{"schema":"qpinn-run-v1","run_id":"{id}","task":"t1/demo","seed":7,"#,
                r#""config":{{"train":{{"lr0":{lr}}}}},"config_hash":"{hash}","threads":1,"simd":1,"#,
                r#""env":{{}},"trace":"","start_unix_ms":1000,"end_unix_ms":2000,"#,
                r#""outcome":"converged","epochs_planned":20,"epochs_run":20,"#,
                r#""final_loss":{fl},"final_error":{fe}}}"#
            ),
            id = id,
            lr = lr,
            hash = hash,
            fl = final_loss,
            fe = final_loss * 0.5,
        )
    };
    let series = |l0: f64, l1: f64| {
        format!(
            "{{\"kind\":\"epoch\",\"epoch\":0,\"loss\":{l0},\"grad_norm\":1.0,\"lr\":0.001,\"epoch_ms\":2.0,\"components\":{{}},\"grad\":{{\"w\":{{\"norm\":1.0,\"var\":0.1}}}}}}\n\
             {{\"kind\":\"epoch\",\"epoch\":10,\"loss\":{l1},\"grad_norm\":0.5,\"lr\":0.001,\"epoch_ms\":2.0,\"components\":{{}},\"grad\":{{\"w\":{{\"norm\":0.5,\"var\":0.05}}}}}}\n"
        )
    };
    for (id, lr, hash, fl) in [
        ("aaaaaaaaaaaaaaaa", 1e-3, "0000000000000001", 1e-4),
        ("bbbbbbbbbbbbbbbb", 1e-1, "0000000000000002", 5e-2),
    ] {
        let run_dir = dir.join(id);
        std::fs::create_dir_all(&run_dir).unwrap();
        std::fs::write(run_dir.join("manifest.json"), manifest(id, lr, hash, fl)).unwrap();
        std::fs::write(run_dir.join("series.jsonl"), series(1.0, fl * 2.0)).unwrap();
    }
    dir
}

#[test]
fn runs_list_show_and_diff_over_a_store() {
    let dir = run_store("lsd");
    let out = bin().args(["runs", "list", "--dir"]).arg(&dir).output().unwrap();
    assert!(out.status.success(), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("aaaaaaaaaaaaaaaa"), "{text}");
    assert!(text.contains("bbbbbbbbbbbbbbbb"), "{text}");
    assert!(text.contains("t1/demo"), "{text}");
    assert!(text.contains("converged"), "{text}");

    let out = bin()
        .args(["runs", "show", "aaaaaaaaaaaaaaaa", "--dir"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("t1/demo"), "{text}");
    assert!(text.contains("loss"), "{text}");
    assert!(text.contains("grad var"), "{text}");

    let out = bin()
        .args(["runs", "diff", "aaaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbbb", "--dir"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stdout(&out));
    let text = stdout(&out);
    assert!(text.contains("lr0"), "config delta missing lr0: {text}");
    assert!(text.contains("final_loss"), "{text}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn runs_regress_exit_codes_follow_the_check_contract() {
    let dir = run_store("regress");
    // Baseline against itself: exit 0.
    let out = bin()
        .args(["runs", "regress", "aaaaaaaaaaaaaaaa", "--baseline", "aaaaaaaaaaaaaaaa", "--dir"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success(), "{}", stdout(&out));
    assert!(stdout(&out).contains("PASS"), "{}", stdout(&out));

    // The 500x-worse run against the baseline: exit 1.
    let out = bin()
        .args(["runs", "regress", "bbbbbbbbbbbbbbbb", "--baseline", "aaaaaaaaaaaaaaaa", "--dir"])
        .arg(&dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{}", stdout(&out));
    assert!(stdout(&out).contains("REGRESSED"), "{}", stdout(&out));

    // Unknown run id / missing --baseline: usage errors, exit 2.
    let out = bin()
        .args(["runs", "regress", "cccccccccccccccc", "--baseline", "aaaaaaaaaaaaaaaa", "--dir"])
        .arg(&dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{}", stdout(&out));
    let out = bin().args(["runs", "regress", "aaaaaaaaaaaaaaaa", "--dir"]).arg(&dir).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = bin().args(["runs", "bogus"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));

    let _ = std::fs::remove_dir_all(&dir);
}
