//! Trace analysis and perf-gate CLI over qpinn telemetry artifacts.
//!
//! ```text
//! qpinn-obs trace RUN.jsonl [-o OUT.json]   # Chrome trace for Perfetto
//! qpinn-obs flame RUN.jsonl [--top N]       # per-phase self/total time
//! qpinn-obs pool  RUN.jsonl                 # work-stealing balance
//! qpinn-obs check --baseline B.json --current C.json [--threshold PCT]
//! qpinn-obs requests ACCESS.jsonl           # per-route RED table
//! qpinn-obs slo ACCESS.jsonl --objective '/v1/eval p99_ms<=50'
//! qpinn-obs runs list [--dir DIR]           # run-record table
//! qpinn-obs runs diff A B [--dir DIR]       # config + metric delta
//! ```
//!
//! Exit codes: 0 success, 1 perf regression / SLO violation / corrupt
//! snapshot, 2 usage or I/O/parse error.

use qpinn_core::report::Json;
use std::process::ExitCode;

const USAGE: &str = "\
qpinn-obs: telemetry trace analysis and perf-regression gate

USAGE:
    qpinn-obs trace RUN.jsonl [-o OUT.json]
        Convert a telemetry JSONL stream to Chrome trace_event JSON
        (load in ui.perfetto.dev or chrome://tracing). Writes to
        stdout unless -o is given.

    qpinn-obs flame RUN.jsonl [--top N]
        Per-phase time table: self time, share, total, ms/epoch.
        Default --top 20.

    qpinn-obs pool RUN.jsonl
        Work-stealing pool balance from the last pool_stats sample.

    qpinn-obs check --baseline BASE.json --current CUR.json [--threshold PCT]
        Compare benchmark records; exit 1 if any perf metric regressed
        beyond the threshold (default 10%).

    qpinn-obs snapshots DIR [--recursive]
        List the .qps snapshots in a checkpoint or model-registry
        directory: version, run id, epoch, bytes, eval error, CRC
        status — without decoding tensor payloads. --recursive also
        walks one level of subdirectories (a qpinn-serve models dir).
        Exit 1 when any file fails its CRC.

    qpinn-obs requests ACCESS.jsonl
        Per-route RED table over a qpinn-access-v1 access log (written
        by qpinn-serve or fetched from /v1/traces): request count,
        rate, error %, shed %, and exact p50/p99/max latency computed
        from the recorded samples.

    qpinn-obs slo ACCESS.jsonl --objective 'ROUTE METRIC<=VALUE' ...
        Evaluate latency / error-budget objectives against an access
        log. ROUTE is a path or `*`; METRIC is one of p50_ms, p99_ms,
        max_ms, error_pct, shed_pct. Repeat --objective, or load one
        objective per line from a file with --objectives FILE (blank
        lines and `#` comments skipped). Exit 1 if any objective is
        violated or has no matching records.

    qpinn-obs runs list [--dir DIR]
        Table of recorded training runs under the qpinn-run-v1 store
        (default target/runs): id, task, seed, final loss, outcome.

    qpinn-obs runs show ID [--dir DIR]
        Manifest, loss/gradient trajectories, last per-layer gradient
        norm/variance, and checkpoint/divergence events of one run.

    qpinn-obs runs diff A B [--dir DIR]
        Configuration delta and metric delta between two runs. Two
        runs with identical config hash and seed are expected to match
        bit-for-bit; a nonzero metric delta there is flagged as a
        determinism violation.

    qpinn-obs runs regress RUN --baseline ID [--dir DIR] [--threshold PCT]
        Gate RUN against a baseline run: final loss / final error must
        not grow beyond the threshold (default 20%), and a run whose
        baseline converged must itself converge. Exit 1 on regression.

EXIT CODES:
    0  success / no regression
    1  perf regression (check / runs regress), corrupt snapshot
       (snapshots), or SLO violation (slo)
    2  usage, I/O, or parse error
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("qpinn-obs: error: {msg}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(cmd) = args.first() else {
        eprint!("{USAGE}");
        return Ok(ExitCode::from(2));
    };
    match cmd.as_str() {
        "trace" => cmd_trace(&args[1..]),
        "flame" => cmd_flame(&args[1..]),
        "pool" => cmd_pool(&args[1..]),
        "check" => cmd_check(&args[1..]),
        "snapshots" => cmd_snapshots(&args[1..]),
        "requests" => cmd_requests(&args[1..]),
        "slo" => cmd_slo(&args[1..]),
        "runs" => cmd_runs(&args[1..]),
        "-h" | "--help" | "help" => {
            print!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`; see `qpinn-obs --help`")),
    }
}

fn read_file(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))
}

fn cmd_trace(args: &[String]) -> Result<ExitCode, String> {
    let mut input: Option<&str> = None;
    let mut output: Option<&str> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "-o" | "--output" => {
                output = Some(it.next().ok_or("-o needs a path")?);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => {
                if input.replace(path).is_some() {
                    return Err("trace takes exactly one input file".into());
                }
            }
        }
    }
    let input = input.ok_or("trace needs a RUN.jsonl input")?;
    let doc = qpinn_obs::trace::chrome_trace(&read_file(input)?)?;
    let text = doc.to_string();
    match output {
        Some(path) => {
            std::fs::write(path, &text).map_err(|e| format!("writing {path}: {e}"))?;
            let n = match doc.get("traceEvents") {
                Some(Json::Arr(v)) => v.len(),
                _ => 0,
            };
            eprintln!("wrote {n} trace event(s) to {path}");
        }
        None => println!("{text}"),
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_flame(args: &[String]) -> Result<ExitCode, String> {
    let mut input: Option<&str> = None;
    let mut top = 20usize;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--top" => {
                top = it
                    .next()
                    .ok_or("--top needs a number")?
                    .parse()
                    .map_err(|e| format!("--top: {e}"))?;
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => {
                if input.replace(path).is_some() {
                    return Err("flame takes exactly one input file".into());
                }
            }
        }
    }
    let input = input.ok_or("flame needs a RUN.jsonl input")?;
    print!("{}", qpinn_obs::flame::report(&read_file(input)?, top)?);
    Ok(ExitCode::SUCCESS)
}

fn cmd_pool(args: &[String]) -> Result<ExitCode, String> {
    let [input] = args else {
        return Err("pool takes exactly one RUN.jsonl input".into());
    };
    print!("{}", qpinn_obs::pool::report(&read_file(input)?)?);
    Ok(ExitCode::SUCCESS)
}

fn cmd_snapshots(args: &[String]) -> Result<ExitCode, String> {
    let mut dir: Option<&str> = None;
    let mut recursive = false;
    for a in args {
        match a.as_str() {
            "--recursive" | "-r" => recursive = true,
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => {
                if dir.replace(path).is_some() {
                    return Err("snapshots takes exactly one directory".into());
                }
            }
        }
    }
    let dir = dir.ok_or("snapshots needs a checkpoint directory")?;
    let (text, corrupt) =
        qpinn_obs::snapshots::report_tree(std::path::Path::new(dir), recursive)?;
    print!("{text}");
    Ok(if corrupt == 0 {
        ExitCode::SUCCESS
    } else {
        eprintln!("qpinn-obs: {corrupt} corrupt snapshot file(s)");
        ExitCode::from(1)
    })
}

fn cmd_requests(args: &[String]) -> Result<ExitCode, String> {
    let [input] = args else {
        return Err("requests takes exactly one ACCESS.jsonl input".into());
    };
    print!("{}", qpinn_obs::requests::report(&read_file(input)?)?);
    Ok(ExitCode::SUCCESS)
}

fn cmd_slo(args: &[String]) -> Result<ExitCode, String> {
    let mut input: Option<&str> = None;
    let mut objectives = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--objective" => {
                objectives.push(qpinn_obs::slo::parse_objective(
                    it.next().ok_or("--objective needs `ROUTE METRIC<=VALUE`")?,
                )?);
            }
            "--objectives" => {
                let path = it.next().ok_or("--objectives needs a file path")?;
                for line in read_file(path)?.lines() {
                    let line = line.trim();
                    if line.is_empty() || line.starts_with('#') {
                        continue;
                    }
                    objectives.push(qpinn_obs::slo::parse_objective(line)?);
                }
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            path => {
                if input.replace(path).is_some() {
                    return Err("slo takes exactly one ACCESS.jsonl input".into());
                }
            }
        }
    }
    let input = input.ok_or("slo needs an ACCESS.jsonl input")?;
    let report = qpinn_obs::slo::evaluate(&read_file(input)?, &objectives)?;
    print!("{}", report.render());
    Ok(if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn cmd_check(args: &[String]) -> Result<ExitCode, String> {
    let mut baseline: Option<&str> = None;
    let mut current: Option<&str> = None;
    let mut threshold = 10.0f64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => baseline = Some(it.next().ok_or("--baseline needs a path")?),
            "--current" => current = Some(it.next().ok_or("--current needs a path")?),
            "--threshold" => {
                threshold = it
                    .next()
                    .ok_or("--threshold needs a percentage")?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?;
                if !threshold.is_finite() || threshold < 0.0 {
                    return Err("--threshold must be a non-negative percentage".into());
                }
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    let baseline = baseline.ok_or("check needs --baseline BASE.json")?;
    let current = current.ok_or("check needs --current CUR.json")?;
    let base = Json::parse(&read_file(baseline)?).map_err(|e| format!("parsing {baseline}: {e}"))?;
    let cur = Json::parse(&read_file(current)?).map_err(|e| format!("parsing {current}: {e}"))?;
    let report = qpinn_obs::check::compare(&base, &cur, threshold);
    print!("{}", report.render());
    Ok(if report.passed() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn cmd_runs(args: &[String]) -> Result<ExitCode, String> {
    let Some(sub) = args.first() else {
        return Err("runs needs a subcommand: list | show | diff | regress".into());
    };
    // Every subcommand takes --dir DIR (default target/runs); positional
    // arguments are run ids.
    let mut dir = qpinn_core::runs::default_dir();
    let mut ids: Vec<&str> = Vec::new();
    let mut baseline: Option<&str> = None;
    let mut threshold = 20.0f64;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--dir" => dir = it.next().ok_or("--dir needs a path")?.into(),
            "--baseline" => baseline = Some(it.next().ok_or("--baseline needs a run id")?),
            "--threshold" => {
                threshold = it
                    .next()
                    .ok_or("--threshold needs a percentage")?
                    .parse()
                    .map_err(|e| format!("--threshold: {e}"))?;
                if !threshold.is_finite() || threshold < 0.0 {
                    return Err("--threshold must be a non-negative percentage".into());
                }
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            id => ids.push(id),
        }
    }
    let load = |id: &str| {
        qpinn_core::runs::load_run(&dir, id)
            .map_err(|e| format!("loading run {id} from {}: {e}", dir.display()))
    };
    match sub.as_str() {
        "list" => {
            if !ids.is_empty() {
                return Err("runs list takes no run ids".into());
            }
            let text = qpinn_obs::runs::list_report(&dir)
                .map_err(|e| format!("listing {}: {e}", dir.display()))?;
            print!("{text}");
            Ok(ExitCode::SUCCESS)
        }
        "show" => {
            let [id] = ids[..] else {
                return Err("runs show takes exactly one run id".into());
            };
            print!("{}", qpinn_obs::runs::show_report(&load(id)?));
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let [a, b] = ids[..] else {
                return Err("runs diff takes exactly two run ids".into());
            };
            let report = qpinn_obs::runs::diff(&load(a)?, &load(b)?);
            print!("{}", report.render());
            Ok(ExitCode::SUCCESS)
        }
        "regress" => {
            let [id] = ids[..] else {
                return Err("runs regress takes exactly one run id".into());
            };
            let baseline = baseline.ok_or("runs regress needs --baseline ID")?;
            let report = qpinn_obs::runs::regress(&load(id)?, &load(baseline)?, threshold);
            print!("{}", report.render());
            Ok(if report.passed() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            })
        }
        other => Err(format!("unknown runs subcommand `{other}`")),
    }
}
