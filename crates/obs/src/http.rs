//! Minimal HTTP/1.1 request/response plumbing shared by the embedded
//! servers in this workspace ([`crate::server::MetricsServer`] and the
//! `qpinn-serve` inference plane).
//!
//! Both servers follow the same shape — `std::net::TcpListener`, one
//! response per connection, `Connection: close` — so the socket-level
//! code lives here exactly once: request-line/header parsing (including
//! `Content-Length`-bounded bodies for POSTs) and status-line/header
//! formatting. Notably the `Content-Length` header is computed in a
//! single place ([`Response::write_to`]); the two servers used to
//! duplicate that formatting.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest request body accepted by [`read_request`] (1 MiB). Bounds
/// memory per connection; a batched eval of tens of thousands of points
/// fits comfortably.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// A parsed HTTP request: method, split path/query, and the raw body.
#[derive(Clone, Debug, Default)]
pub struct Request {
    /// Uppercase method token as sent (`GET`, `POST`, …).
    pub method: String,
    /// Path with any `?query` suffix removed.
    pub path: String,
    /// The query string after `?`, when present (undecoded).
    pub query: Option<String>,
    /// All request headers as `(lowercased-name, trimmed-value)` pairs,
    /// in arrival order (the serve plane reads `x-qpinn-trace` from here
    /// to adopt an upstream trace id).
    pub headers: Vec<(String, String)>,
    /// Raw request body (empty unless `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Body as UTF-8, for JSON request payloads.
    pub fn body_str(&self) -> Result<&str, String> {
        std::str::from_utf8(&self.body).map_err(|e| format!("body is not UTF-8: {e}"))
    }

    /// First header value with the given name (case-insensitive).
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Read and parse one request from `stream`, returning the request and
/// the underlying stream (back out of the buffered reader) for the
/// response. Malformed framing surfaces as `InvalidData`.
pub fn read_request(stream: TcpStream) -> std::io::Result<(Request, TcpStream)> {
    use std::io::{Error, ErrorKind};
    let mut reader = BufReader::new(stream);
    let mut request_line = String::new();
    reader.read_line(&mut request_line)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("").to_string();
    let target = parts.next().unwrap_or("");
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), Some(q.to_string())),
        None => (target.to_string(), None),
    };
    // Collect headers; the only one that changes framing is
    // Content-Length, but the rest are kept (lowercased names) for
    // routes that read them, e.g. trace-id propagation.
    let mut content_length = 0usize;
    let mut headers = Vec::new();
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
        if headers.len() >= 100 {
            return Err(Error::new(ErrorKind::InvalidData, "too many headers"));
        }
        if let Some((name, value)) = line.split_once(':') {
            let name = name.trim().to_ascii_lowercase();
            let value = value.trim().to_string();
            if name == "content-length" {
                content_length = value
                    .parse()
                    .map_err(|_| Error::new(ErrorKind::InvalidData, "bad Content-Length"))?;
            }
            headers.push((name, value));
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(Error::new(
            ErrorKind::InvalidData,
            format!("body of {content_length} bytes exceeds the {MAX_BODY_BYTES} byte limit"),
        ));
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body)?;
    }
    Ok((
        Request {
            method,
            path,
            query,
            headers,
            body,
        },
        reader.into_inner(),
    ))
}

/// A response ready to serialize: status line, content type, optional
/// extra headers, body.
#[derive(Clone, Debug)]
pub struct Response {
    /// Full status, e.g. `"200 OK"` or `"429 Too Many Requests"`.
    pub status: &'static str,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Additional `(name, value)` headers (e.g. `Retry-After`).
    pub extra_headers: Vec<(&'static str, String)>,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `200 OK` JSON response.
    pub fn json(body: impl Into<String>) -> Self {
        Response {
            status: "200 OK",
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A JSON response with an explicit status.
    pub fn json_status(status: &'static str, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// A plain-text response with an explicit status.
    pub fn text(status: &'static str, body: impl Into<String>) -> Self {
        Response {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into(),
        }
    }

    /// Append an extra header.
    pub fn header(mut self, name: &'static str, value: impl Into<String>) -> Self {
        self.extra_headers.push((name, value.into()));
        self
    }

    /// Serialize onto `stream`: status line, `Content-Type`, the one
    /// shared `Content-Length`, extra headers, `Connection: close`, body.
    pub fn write_to(&self, stream: &mut TcpStream) -> std::io::Result<()> {
        let mut head = format!(
            "HTTP/1.1 {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
            self.status,
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.extra_headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("Connection: close\r\n\r\n");
        stream.write_all(head.as_bytes())?;
        stream.write_all(self.body.as_bytes())?;
        stream.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    /// Round-trip a request and response over a real socket pair.
    fn exchange(raw_request: &str, response: Response) -> (Request, String) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let raw = raw_request.to_string();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(raw.as_bytes()).unwrap();
            let mut buf = String::new();
            s.read_to_string(&mut buf).unwrap();
            buf
        });
        let (conn, _) = listener.accept().unwrap();
        let (req, mut stream) = read_request(conn).unwrap();
        response.write_to(&mut stream).unwrap();
        drop(stream);
        (req, client.join().unwrap())
    }

    #[test]
    fn parses_get_with_query() {
        let (req, raw) = exchange(
            "GET /v1/models?full=1 HTTP/1.1\r\nHost: t\r\n\r\n",
            Response::json("{\"ok\":true}"),
        );
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/v1/models");
        assert_eq!(req.query.as_deref(), Some("full=1"));
        assert_eq!(req.header("Host"), Some("t"));
        assert!(req.header("x-qpinn-trace").is_none());
        assert!(req.body.is_empty());
        assert!(raw.starts_with("HTTP/1.1 200 OK\r\n"), "{raw}");
        assert!(raw.contains("Content-Length: 11\r\n"), "{raw}");
        assert!(raw.ends_with("{\"ok\":true}"), "{raw}");
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let body = "{\"points\":[[0.5,0.1]]}";
        let (req, _) = exchange(
            &format!(
                "POST /v1/eval HTTP/1.1\r\nContent-Type: application/json\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                body.len()
            ),
            Response::json("{}"),
        );
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/eval");
        assert_eq!(req.body_str().unwrap(), body);
    }

    #[test]
    fn extra_headers_and_status_render() {
        let (_, raw) = exchange(
            "GET / HTTP/1.1\r\n\r\n",
            Response::json_status("429 Too Many Requests", "{\"error\":\"shed\"}")
                .header("Retry-After", "1"),
        );
        assert!(raw.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{raw}");
        assert!(raw.contains("Retry-After: 1\r\n"), "{raw}");
        assert!(raw.contains("Connection: close\r\n"), "{raw}");
    }

    #[test]
    fn oversized_body_is_rejected() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            write!(
                s,
                "POST /v1/eval HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
                MAX_BODY_BYTES + 1
            )
            .unwrap();
            // Leave the body unsent; the server must bail on the header.
            let mut buf = String::new();
            let _ = s.read_to_string(&mut buf);
        });
        let (conn, _) = listener.accept().unwrap();
        assert!(read_request(conn).is_err());
        client.join().unwrap();
    }
}
