//! Cross-run training forensics over the `qpinn-run-v1` store: the
//! `qpinn-obs runs {list,show,diff,regress}` subcommands.
//!
//! * `list` — one row per run: id, task, seed, final loss, outcome.
//! * `show` — manifest + loss/gradient trajectories for one run.
//! * `diff` — configuration delta and metric delta between two runs.
//!   Two runs with identical config hash and seed are expected to be
//!   bit-identical (ordered reductions make training deterministic at a
//!   fixed thread count); a nonzero metric delta under an identical
//!   setup is therefore flagged as a determinism violation.
//! * `regress` — threshold gate of a run against a baseline run, with
//!   the same 0/1/2 exit-code contract as `check`.

use qpinn_core::report::{sparkline_log, Json, TextTable};
use qpinn_core::runs::{list_runs, RunRecord};
use std::path::Path;

/// Render the `runs list` table for a store directory.
pub fn list_report(dir: &Path) -> std::io::Result<String> {
    let summaries = list_runs(dir)?;
    if summaries.is_empty() {
        return Ok(format!("no runs under {}\n", dir.display()));
    }
    let mut table = TextTable::new(&["run", "task", "seed", "final loss", "outcome"]);
    for s in &summaries {
        table.row(&[
            s.run_id.clone(),
            s.task.clone(),
            s.seed.map(|v| v.to_string()).unwrap_or_else(|| "?".into()),
            s.final_loss
                .map(|v| format!("{v:.3e}"))
                .unwrap_or_else(|| "-".into()),
            s.outcome.clone(),
        ]);
    }
    Ok(table.render())
}

/// Render the `runs show` report: the manifest, the loss/grad-norm
/// trajectories, and the last recorded per-layer gradient stats.
pub fn show_report(rec: &RunRecord) -> String {
    let m = &rec.manifest;
    let mut out = String::new();
    out.push_str(&format!("run      {}\n", m.run_id));
    out.push_str(&format!("task     {}  (seed {})\n", m.task, m.seed));
    out.push_str(&format!(
        "outcome  {}  ({} of {} epochs)\n",
        m.outcome.as_str(),
        m.epochs_run
            .map(|v| v.to_string())
            .unwrap_or_else(|| "?".into()),
        m.epochs_planned
    ));
    out.push_str(&format!(
        "widths   threads={} simd={}\n",
        m.threads, m.simd
    ));
    out.push_str(&format!("config   {}\n", m.config_hash));
    if !m.trace.is_empty() {
        out.push_str(&format!("trace    {}\n", m.trace));
    }
    if let (Some(loss), Some(err)) = (m.final_loss, m.final_error) {
        out.push_str(&format!("final    loss {loss:.3e}  error {err:.3e}\n"));
    }
    let loss: Vec<f64> = rec.series_of("loss").iter().map(|(_, v)| *v).collect();
    if !loss.is_empty() {
        out.push_str(&format!(
            "loss     {}  [{:.3e} → {:.3e}, {} points]\n",
            sparkline_log(&loss),
            loss[0],
            loss[loss.len() - 1],
            loss.len()
        ));
    }
    let gnorm: Vec<f64> = rec.series_of("grad_norm").iter().map(|(_, v)| *v).collect();
    if !gnorm.is_empty() {
        out.push_str(&format!("grad     {}\n", sparkline_log(&gnorm)));
    }
    // Last epoch line's per-layer stats: the barren-plateau snapshot.
    if let Some(grad) = rec
        .series
        .iter()
        .rev()
        .find(|l| l.get("kind").and_then(|k| k.as_str()) == Some("epoch"))
        .and_then(|l| l.get("grad").cloned())
    {
        if let Json::Obj(layers) = grad {
            if !layers.is_empty() {
                let mut table = TextTable::new(&["layer", "grad norm", "grad var"]);
                for (name, stats) in &layers {
                    let num = |k: &str| {
                        stats
                            .get(k)
                            .and_then(|v| v.as_num())
                            .map(|v| format!("{v:.3e}"))
                            .unwrap_or_else(|| "-".into())
                    };
                    table.row(&[name.clone(), num("norm"), num("var")]);
                }
                out.push_str("\nlast-interval gradient stats:\n");
                out.push_str(&table.render());
            }
        }
    }
    let events: Vec<String> = rec
        .series
        .iter()
        .filter_map(|l| {
            let kind = l.get("kind")?.as_str()?;
            if kind == "epoch" {
                return None;
            }
            let epoch = l.get("epoch").and_then(|v| v.as_num()).unwrap_or(0.0);
            Some(format!("  epoch {epoch:>6}: {kind}"))
        })
        .collect();
    if !events.is_empty() {
        out.push_str("\nevents:\n");
        out.push_str(&events.join("\n"));
        out.push('\n');
    }
    out
}

/// One changed configuration key.
#[derive(Clone, Debug)]
pub struct ConfigDelta {
    /// Dotted path of the key.
    pub key: String,
    /// Rendered value in run A (`-` when absent).
    pub a: String,
    /// Rendered value in run B (`-` when absent).
    pub b: String,
}

/// One compared metric.
#[derive(Clone, Debug)]
pub struct MetricDelta {
    /// Metric name (`final_loss`, `loss[max|Δ|]`, ...).
    pub metric: String,
    /// Value in run A.
    pub a: f64,
    /// Value in run B.
    pub b: f64,
    /// `b - a` (for series metrics, the maximum absolute pointwise
    /// difference, reported in both value slots).
    pub delta: f64,
}

/// The outcome of [`diff`].
#[derive(Clone, Debug)]
pub struct DiffReport {
    /// Run ids compared.
    pub runs: (String, String),
    /// Config keys that differ.
    pub config: Vec<ConfigDelta>,
    /// Same config hash *and* same seed.
    pub identical_setup: bool,
    /// Compared metrics.
    pub metrics: Vec<MetricDelta>,
    /// Every metric delta is exactly zero.
    pub zero_metric_delta: bool,
    /// Epochs both series cover (aligned `"epoch"` lines).
    pub aligned_epochs: usize,
}

/// Flatten a config document into dotted `key → rendered value` pairs.
fn flatten(prefix: &str, doc: &Json, out: &mut Vec<(String, String)>) {
    match doc {
        Json::Obj(pairs) => {
            for (k, v) in pairs {
                let key = if prefix.is_empty() {
                    k.clone()
                } else {
                    format!("{prefix}.{k}")
                };
                flatten(&key, v, out);
            }
        }
        Json::Arr(items) => {
            for (i, v) in items.iter().enumerate() {
                flatten(&format!("{prefix}[{i}]"), v, out);
            }
        }
        leaf => out.push((prefix.to_string(), leaf.to_string())),
    }
}

/// Maximum absolute pointwise difference between two epoch-aligned
/// series, plus the number of aligned points.
fn series_delta(a: &[(usize, f64)], b: &[(usize, f64)]) -> (f64, usize) {
    let mut max = 0.0f64;
    let mut aligned = 0usize;
    for (ea, va) in a {
        if let Some((_, vb)) = b.iter().find(|(eb, _)| eb == ea) {
            aligned += 1;
            let d = (vb - va).abs();
            if d.is_nan() {
                // A NaN on either side counts as a (maximal) difference
                // unless both sides are NaN at the same epoch.
                if !(va.is_nan() && vb.is_nan()) {
                    max = f64::INFINITY;
                }
            } else if d > max {
                max = d;
            }
        }
    }
    (max, aligned)
}

/// Compare two loaded runs: configuration delta + metric delta.
pub fn diff(a: &RunRecord, b: &RunRecord) -> DiffReport {
    let mut fa = Vec::new();
    let mut fb = Vec::new();
    flatten("config", &a.manifest.config, &mut fa);
    flatten("config", &b.manifest.config, &mut fb);
    fa.push(("seed".into(), a.manifest.seed.to_string()));
    fb.push(("seed".into(), b.manifest.seed.to_string()));
    fa.push(("threads".into(), a.manifest.threads.to_string()));
    fb.push(("threads".into(), b.manifest.threads.to_string()));
    fa.push(("simd".into(), a.manifest.simd.to_string()));
    fb.push(("simd".into(), b.manifest.simd.to_string()));
    let mut config = Vec::new();
    let lookup = |set: &[(String, String)], key: &str| -> Option<String> {
        set.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    };
    let mut keys: Vec<String> = fa.iter().map(|(k, _)| k.clone()).collect();
    for (k, _) in &fb {
        if !keys.contains(k) {
            keys.push(k.clone());
        }
    }
    for key in keys {
        let va = lookup(&fa, &key);
        let vb = lookup(&fb, &key);
        if va != vb {
            config.push(ConfigDelta {
                key,
                a: va.unwrap_or_else(|| "-".into()),
                b: vb.unwrap_or_else(|| "-".into()),
            });
        }
    }
    let identical_setup = a.manifest.config_hash == b.manifest.config_hash
        && a.manifest.seed == b.manifest.seed;

    let mut metrics = Vec::new();
    let mut push_final = |name: &str, va: Option<f64>, vb: Option<f64>| {
        if let (Some(va), Some(vb)) = (va, vb) {
            metrics.push(MetricDelta {
                metric: name.to_string(),
                a: va,
                b: vb,
                delta: vb - va,
            });
        }
    };
    push_final("final_loss", a.manifest.final_loss, b.manifest.final_loss);
    push_final(
        "final_error",
        a.manifest.final_error,
        b.manifest.final_error,
    );
    let mut aligned_epochs = 0;
    for field in ["loss", "grad_norm"] {
        let sa = a.series_of(field);
        let sb = b.series_of(field);
        let (max, aligned) = series_delta(&sa, &sb);
        aligned_epochs = aligned_epochs.max(aligned);
        if aligned > 0 {
            metrics.push(MetricDelta {
                metric: format!("{field} series (max |Δ| over {aligned} epochs)"),
                a: max,
                b: max,
                delta: max,
            });
        }
    }
    let zero_metric_delta = !metrics.is_empty() && metrics.iter().all(|m| m.delta == 0.0);
    DiffReport {
        runs: (a.manifest.run_id.clone(), b.manifest.run_id.clone()),
        config,
        identical_setup,
        metrics,
        zero_metric_delta,
        aligned_epochs,
    }
}

impl DiffReport {
    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!("diff {}  →  {}\n\n", self.runs.0, self.runs.1);
        if self.config.is_empty() {
            out.push_str("config: identical\n");
        } else {
            let mut t = TextTable::new(&["config key", "a", "b"]);
            for d in &self.config {
                t.row(&[d.key.clone(), d.a.clone(), d.b.clone()]);
            }
            out.push_str(&t.render());
        }
        out.push('\n');
        if self.metrics.is_empty() {
            out.push_str("metrics: none recorded in both runs\n");
        } else {
            let mut t = TextTable::new(&["metric", "a", "b", "delta"]);
            for m in &self.metrics {
                t.row(&[
                    m.metric.clone(),
                    format!("{:.6e}", m.a),
                    format!("{:.6e}", m.b),
                    format!("{:+.3e}", m.delta),
                ]);
            }
            out.push_str(&t.render());
        }
        if self.identical_setup {
            out.push_str(if self.zero_metric_delta {
                "\nidentical config+seed, zero metric delta: runs are reproducible\n"
            } else {
                "\nWARNING: identical config+seed but nonzero metric delta — \
                 determinism violation (or different thread/SIMD width)\n"
            });
        }
        out
    }
}

/// One gated metric in a [`RegressReport`].
#[derive(Clone, Debug)]
pub struct RegressRow {
    /// Metric name.
    pub metric: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Signed relative change in percent (0 when the baseline is 0).
    pub delta_pct: f64,
    /// Whether this metric regressed beyond the threshold.
    pub regressed: bool,
}

/// The outcome of [`regress`].
#[derive(Clone, Debug)]
pub struct RegressReport {
    /// Run ids: (current, baseline).
    pub runs: (String, String),
    /// The threshold used, percent.
    pub threshold_pct: f64,
    /// Gated metrics.
    pub rows: Vec<RegressRow>,
    /// Violations that are not per-metric (outcome changes, missing
    /// finals).
    pub violations: Vec<String>,
}

impl RegressReport {
    /// True when nothing regressed.
    pub fn passed(&self) -> bool {
        self.violations.is_empty() && self.rows.iter().all(|r| !r.regressed)
    }

    /// Human-readable report.
    pub fn render(&self) -> String {
        let mut out = format!(
            "regress {} vs baseline {}  (threshold {:.1}%)\n",
            self.runs.0, self.runs.1, self.threshold_pct
        );
        let mut t = TextTable::new(&["metric", "baseline", "current", "delta", "status"]);
        for r in &self.rows {
            t.row(&[
                r.metric.clone(),
                format!("{:.6e}", r.baseline),
                format!("{:.6e}", r.current),
                format!("{:+.1}%", r.delta_pct),
                if r.regressed { "REGRESSED" } else { "ok" }.to_string(),
            ]);
        }
        out.push_str(&t.render());
        for v in &self.violations {
            out.push_str(&format!("VIOLATION: {v}\n"));
        }
        out.push_str(if self.passed() {
            "runs-regress: PASS\n"
        } else {
            "runs-regress: FAIL\n"
        });
        out
    }
}

/// Gate `current` against `baseline`: the final loss and final error
/// (both lower-is-better) must not grow by more than `threshold_pct`
/// percent, and a run whose baseline converged must itself converge.
pub fn regress(current: &RunRecord, baseline: &RunRecord, threshold_pct: f64) -> RegressReport {
    let mut rows = Vec::new();
    let mut violations = Vec::new();
    let base_outcome = baseline.manifest.outcome;
    let cur_outcome = current.manifest.outcome;
    if base_outcome == qpinn_core::runs::RunOutcome::Converged
        && cur_outcome != qpinn_core::runs::RunOutcome::Converged
    {
        violations.push(format!(
            "baseline converged but current run is `{}`",
            cur_outcome.as_str()
        ));
    }
    for (name, base, cur) in [
        (
            "final_loss",
            baseline.manifest.final_loss,
            current.manifest.final_loss,
        ),
        (
            "final_error",
            baseline.manifest.final_error,
            current.manifest.final_error,
        ),
    ] {
        match (base, cur) {
            (Some(b), Some(c)) => {
                let delta_pct = if b != 0.0 { (c - b) / b.abs() * 100.0 } else { 0.0 };
                // Lower is better. Degenerate baselines (zero or
                // non-finite) only regress on a non-finite current.
                let regressed = if b.is_finite() && b != 0.0 {
                    !c.is_finite() || delta_pct > threshold_pct
                } else {
                    !c.is_finite() && b.is_finite()
                };
                rows.push(RegressRow {
                    metric: name.to_string(),
                    baseline: b,
                    current: c,
                    delta_pct,
                    regressed,
                });
            }
            (Some(_), None) => {
                violations.push(format!("current run records no {name} (not finalized?)"))
            }
            _ => {}
        }
    }
    RegressReport {
        runs: (
            current.manifest.run_id.clone(),
            baseline.manifest.run_id.clone(),
        ),
        threshold_pct,
        rows,
        violations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpinn_core::runs::{Manifest, RunOutcome};

    fn record(id: &str, seed: u64, lr: f64, final_loss: f64, losses: &[f64]) -> RunRecord {
        let config = Json::obj(vec![(
            "train",
            Json::obj(vec![("lr0", Json::Num(lr))]),
        )]);
        let config_hash = format!(
            "{:016x}",
            qpinn_core::runs::fnv1a64(&config.to_string())
        );
        let series = losses
            .iter()
            .enumerate()
            .map(|(i, l)| {
                Json::obj(vec![
                    ("kind", Json::Str("epoch".into())),
                    ("epoch", Json::Num((i * 10) as f64)),
                    ("loss", Json::Num(*l)),
                    ("grad_norm", Json::Num(l * 2.0)),
                ])
            })
            .collect();
        RunRecord {
            manifest: Manifest {
                run_id: id.into(),
                task: "demo".into(),
                seed,
                config,
                config_hash,
                threads: 1,
                simd: 1,
                env: Vec::new(),
                trace: String::new(),
                start_unix_ms: 1,
                end_unix_ms: Some(2),
                outcome: RunOutcome::Converged,
                epochs_planned: 30,
                epochs_run: Some(30),
                final_loss: Some(final_loss),
                final_error: Some(final_loss * 0.1),
            },
            series,
        }
    }

    #[test]
    fn identical_runs_diff_to_zero() {
        let a = record("a", 7, 1e-3, 1e-4, &[1.0, 0.1, 1e-4]);
        let b = record("b", 7, 1e-3, 1e-4, &[1.0, 0.1, 1e-4]);
        let d = diff(&a, &b);
        assert!(d.identical_setup);
        assert!(d.config.is_empty());
        assert!(d.zero_metric_delta, "{:?}", d.metrics);
        assert_eq!(d.aligned_epochs, 3);
        assert!(d.render().contains("reproducible"));
    }

    #[test]
    fn lr_change_shows_in_config_and_breaks_identity() {
        let a = record("a", 7, 1e-3, 1e-4, &[1.0, 0.1]);
        let b = record("b", 7, 1e-1, 5e-2, &[1.0, 0.5]);
        let d = diff(&a, &b);
        assert!(!d.identical_setup);
        assert!(d.config.iter().any(|c| c.key.contains("lr0")));
        assert!(!d.zero_metric_delta);
    }

    #[test]
    fn nonzero_delta_under_identical_setup_is_flagged() {
        let a = record("a", 7, 1e-3, 1e-4, &[1.0, 0.1]);
        let b = record("b", 7, 1e-3, 2e-4, &[1.0, 0.2]);
        let d = diff(&a, &b);
        assert!(d.identical_setup && !d.zero_metric_delta);
        assert!(d.render().contains("determinism violation"));
    }

    #[test]
    fn regress_gates_on_threshold_and_outcome() {
        let base = record("base", 7, 1e-3, 1e-4, &[1.0, 1e-4]);
        let same = record("cur", 7, 1e-3, 1.05e-4, &[1.0, 1.05e-4]);
        assert!(regress(&same, &base, 20.0).passed());
        let worse = record("cur", 7, 1e-1, 1e-2, &[1.0, 1e-2]);
        let rep = regress(&worse, &base, 20.0);
        assert!(!rep.passed());
        assert!(rep.render().contains("REGRESSED"));
        let mut diverged = record("cur", 7, 1e-3, 1e-4, &[1.0]);
        diverged.manifest.outcome = RunOutcome::Diverged;
        assert!(!regress(&diverged, &base, 20.0).passed());
        let mut unfinished = record("cur", 7, 1e-3, 1e-4, &[1.0]);
        unfinished.manifest.final_loss = None;
        unfinished.manifest.outcome = RunOutcome::Incomplete;
        assert!(!regress(&unfinished, &base, 20.0).passed());
    }
}
