//! Work-stealing pool balance report from `pool_stats` events.
//!
//! The pool flushes per-worker task/steal/idle counters at drain
//! boundaries, and `qpinn_core::obs::emit_pool_stats` snapshots them
//! into `pool_stats` mark events. This module reads the **last** such
//! event in a stream (counters are cumulative, so the final sample
//! covers the whole run) and renders a balance report: per-worker rows
//! plus the two numbers that matter — the task imbalance ratio
//! (max/mean tasks per worker; 1.0 is perfect) and the steal ratio
//! (steals/tasks; persistent high values mean the chunk dealing is
//! mis-sized).

use qpinn_core::report::{Json, TextTable};

/// Per-worker counters parsed from a `pool_stats` event.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct WorkerStats {
    /// Tasks executed.
    pub tasks: f64,
    /// Tasks obtained by stealing.
    pub steals: f64,
    /// Idle park/wake cycles.
    pub idle_waits: f64,
}

/// The parsed balance picture.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct PoolBalance {
    /// Context string the sample was tagged with (`"kernels"`, …).
    pub context: String,
    /// Per-worker counters.
    pub workers: Vec<WorkerStats>,
    /// Tasks run inline by the launching thread.
    pub launcher_tasks: f64,
    /// Tasks the launcher stole back.
    pub launcher_steals: f64,
    /// Parallel sets launched over the run.
    pub sets_launched: f64,
}

impl PoolBalance {
    /// Total tasks across workers and launcher.
    pub fn total_tasks(&self) -> f64 {
        self.workers.iter().map(|w| w.tasks).sum::<f64>() + self.launcher_tasks
    }

    /// max/mean worker tasks (1.0 = perfectly balanced; 0 when idle).
    pub fn imbalance(&self) -> f64 {
        let n = self.workers.len().max(1) as f64;
        let mean = self.workers.iter().map(|w| w.tasks).sum::<f64>() / n;
        if mean <= 0.0 {
            return 0.0;
        }
        self.workers.iter().map(|w| w.tasks).fold(0.0, f64::max) / mean
    }

    /// Stolen fraction of all worker tasks.
    pub fn steal_ratio(&self) -> f64 {
        let tasks: f64 = self.workers.iter().map(|w| w.tasks).sum();
        let steals: f64 =
            self.workers.iter().map(|w| w.steals).sum::<f64>() + self.launcher_steals;
        if tasks <= 0.0 {
            0.0
        } else {
            steals / tasks
        }
    }
}

/// Extract the last `pool_stats` event from a JSONL stream, if any.
pub fn last_pool_stats(jsonl: &str) -> Result<Option<PoolBalance>, String> {
    let events = crate::parse_jsonl(jsonl)?;
    let Some(e) = events
        .iter()
        .rev()
        .find(|e| e.get("name").and_then(Json::as_str) == Some("pool_stats"))
    else {
        return Ok(None);
    };
    let fields = e.get("fields").ok_or("pool_stats event without fields")?;
    let num = |k: &str| fields.get(k).and_then(Json::as_num).unwrap_or(0.0);
    let n_workers = num("workers") as usize;
    let workers = (0..n_workers)
        .map(|i| WorkerStats {
            tasks: num(&format!("worker{i}.tasks")),
            steals: num(&format!("worker{i}.steals")),
            idle_waits: num(&format!("worker{i}.idle_waits")),
        })
        .collect();
    Ok(Some(PoolBalance {
        context: fields
            .get("context")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string(),
        workers,
        launcher_tasks: num("launcher_tasks"),
        launcher_steals: num("launcher_steals"),
        sets_launched: num("sets_launched"),
    }))
}

/// Render the balance report for the CLI.
pub fn report(jsonl: &str) -> Result<String, String> {
    let Some(b) = last_pool_stats(jsonl)? else {
        return Ok(
            "no pool_stats events in stream (single-threaded run, or pool never sampled)\n"
                .into(),
        );
    };
    let mut table = TextTable::new(&["worker", "tasks", "steals", "idle waits"]);
    for (i, w) in b.workers.iter().enumerate() {
        table.row(&[
            format!("{i}"),
            format!("{}", w.tasks),
            format!("{}", w.steals),
            format!("{}", w.idle_waits),
        ]);
    }
    table.row(&[
        "launcher".into(),
        format!("{}", b.launcher_tasks),
        format!("{}", b.launcher_steals),
        "-".into(),
    ]);
    Ok(format!(
        "pool balance (context: {}, {} parallel set(s), {} total tasks)\n{}\
         imbalance (max/mean worker tasks): {:.2}\nsteal ratio: {:.3}\n",
        b.context,
        b.sets_launched,
        b.total_tasks(),
        table.render(),
        b.imbalance(),
        b.steal_ratio()
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        r#"{"v":1,"ts_ns":50,"kind":"mark","name":"pool_stats","thread":"main","fields":{"context":"early","threads":2,"workers":1,"launcher_tasks":1,"launcher_steals":0,"sets_launched":1,"total_tasks":2,"worker0.tasks":1,"worker0.steals":0,"worker0.idle_waits":0}}"#,
        "\n",
        r#"{"v":1,"ts_ns":900,"kind":"mark","name":"pool_stats","thread":"main","fields":{"context":"kernels","threads":3,"workers":2,"launcher_tasks":10,"launcher_steals":2,"sets_launched":5,"total_tasks":70,"worker0.tasks":40,"worker0.steals":4,"worker0.idle_waits":1,"worker1.tasks":20,"worker1.steals":6,"worker1.idle_waits":3}}"#,
        "\n",
    );

    #[test]
    fn parses_the_last_sample() {
        let b = last_pool_stats(SAMPLE).unwrap().unwrap();
        assert_eq!(b.context, "kernels");
        assert_eq!(b.workers.len(), 2);
        assert_eq!(b.workers[1].steals, 6.0);
        assert_eq!(b.total_tasks(), 70.0);
        // mean tasks = 30, max = 40.
        assert!((b.imbalance() - 40.0 / 30.0).abs() < 1e-12);
        // (4 + 6 + 2) / 60.
        assert!((b.steal_ratio() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn report_renders_rows_and_ratios() {
        let text = report(SAMPLE).unwrap();
        assert!(text.contains("context: kernels"), "{text}");
        assert!(text.contains("imbalance"), "{text}");
        assert!(text.contains("launcher"), "{text}");
    }

    #[test]
    fn missing_pool_stats_is_not_an_error() {
        let text = report("{\"v\":1,\"ts_ns\":1,\"kind\":\"mark\",\"name\":\"x\",\"thread\":\"m\",\"fields\":{}}").unwrap();
        assert!(text.contains("no pool_stats"));
    }
}
