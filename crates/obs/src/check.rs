//! The perf regression gate behind `qpinn-obs check`.
//!
//! Compares two benchmark records (the committed `BENCH_parallel.json`
//! baseline against a freshly produced one, or any pair of
//! `target/experiments/*.json` records with shared keys) and flags every
//! performance metric that moved against its grain by more than a
//! threshold percentage.
//!
//! Metrics are discovered structurally rather than from a hard-coded
//! schema: numeric values (and numeric arrays, compared elementwise)
//! present in *both* documents are diffed when their key names identify
//! a performance direction —
//!
//! * **higher is better**: `*gflops*`, `*per_s*` (`circuits_per_s`),
//!   `*speedup*`;
//! * **lower is better**: `s_per_epoch`, `ms`/`*_ms` (kernel times),
//!   `*wall*`, `*_ns`.
//!
//! Anything else (`threads`, `qubits`, `host_cpus`, shapes, ids) is
//! configuration, not performance, and is skipped. That keeps the gate
//! honest when records grow new fields: a new perf series is guarded the
//! first time it appears in both files, and a new config knob never
//! trips it.

use qpinn_core::report::{Json, TextTable};

/// Which way a metric is allowed to move.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Direction {
    /// Bigger numbers are better (throughput).
    HigherIsBetter,
    /// Smaller numbers are better (latency).
    LowerIsBetter,
}

/// Infer the performance direction of a key, or `None` for
/// configuration values that should not be gated.
pub fn direction_of(key: &str) -> Option<Direction> {
    let k = key.to_ascii_lowercase();
    if k.contains("gflops") || k.contains("per_s") || k.contains("speedup") {
        return Some(Direction::HigherIsBetter);
    }
    if k == "ms"
        || k.ends_with("_ms")
        || k == "s_per_epoch"
        || k.contains("wall")
        || k.ends_with("_ns")
    {
        return Some(Direction::LowerIsBetter);
    }
    None
}

/// One compared metric value.
#[derive(Clone, Debug)]
pub struct MetricDelta {
    /// Dotted path of the metric, with `[i]` for array elements.
    pub key: String,
    /// Baseline value.
    pub baseline: f64,
    /// Current value.
    pub current: f64,
    /// Signed relative change in percent (`(current-baseline)/baseline`).
    pub delta_pct: f64,
    /// Which way this metric is allowed to move.
    pub direction: Direction,
    /// True when the move is in the bad direction beyond the threshold.
    pub regressed: bool,
}

/// The outcome of a [`compare`] run.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Every compared metric, in document order.
    pub deltas: Vec<MetricDelta>,
    /// The threshold the comparison used, percent.
    pub threshold_pct: f64,
}

impl CheckReport {
    /// Metrics that regressed beyond the threshold.
    pub fn regressions(&self) -> Vec<&MetricDelta> {
        self.deltas.iter().filter(|d| d.regressed).collect()
    }

    /// True when nothing regressed.
    pub fn passed(&self) -> bool {
        self.deltas.iter().all(|d| !d.regressed)
    }

    /// Render the comparison table plus a verdict line.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(&["metric", "baseline", "current", "Δ%", "verdict"]);
        for d in &self.deltas {
            table.row(&[
                d.key.clone(),
                format!("{:.4}", d.baseline),
                format!("{:.4}", d.current),
                format!("{:+.1}", d.delta_pct),
                if d.regressed {
                    "REGRESSED".into()
                } else {
                    "ok".into()
                },
            ]);
        }
        let regressions = self.regressions().len();
        let verdict = if self.deltas.is_empty() {
            "no comparable perf metrics found (key sets disjoint?)".to_string()
        } else if regressions == 0 {
            format!(
                "PASS: {} metric(s) within {:.1}% of baseline",
                self.deltas.len(),
                self.threshold_pct
            )
        } else {
            format!(
                "FAIL: {regressions} of {} metric(s) regressed beyond {:.1}%",
                self.deltas.len(),
                self.threshold_pct
            )
        };
        format!("{}{verdict}\n", table.render())
    }
}

fn push_delta(out: &mut Vec<MetricDelta>, key: String, dir: Direction, b: f64, c: f64, thr: f64) {
    if !b.is_finite() || !c.is_finite() || b == 0.0 {
        return;
    }
    let delta_pct = (c - b) / b * 100.0;
    let regressed = match dir {
        Direction::HigherIsBetter => delta_pct < -thr,
        Direction::LowerIsBetter => delta_pct > thr,
    };
    out.push(MetricDelta {
        key,
        baseline: b,
        current: c,
        delta_pct,
        direction: dir,
        regressed,
    });
}

fn walk(prefix: &str, baseline: &Json, current: &Json, thr: f64, out: &mut Vec<MetricDelta>) {
    match (baseline, current) {
        (Json::Obj(pairs), Json::Obj(_)) => {
            for (k, bv) in pairs {
                if let Some(cv) = current.get(k) {
                    let key = if prefix.is_empty() {
                        k.clone()
                    } else {
                        format!("{prefix}.{k}")
                    };
                    walk(&key, bv, cv, thr, out);
                }
            }
        }
        (Json::Arr(bs), Json::Arr(cs)) => {
            let Some(dir) = direction_of(prefix) else {
                return;
            };
            for (i, (bv, cv)) in bs.iter().zip(cs).enumerate() {
                if let (Some(b), Some(c)) = (bv.as_num(), cv.as_num()) {
                    push_delta(out, format!("{prefix}[{i}]"), dir, b, c, thr);
                }
            }
        }
        (Json::Num(b), Json::Num(c)) => {
            if let Some(dir) = direction_of(prefix) {
                push_delta(out, prefix.to_string(), dir, *b, *c, thr);
            }
        }
        _ => {}
    }
}

/// Diff `current` against `baseline` with a regression threshold in
/// percent.
pub fn compare(baseline: &Json, current: &Json, threshold_pct: f64) -> CheckReport {
    let mut deltas = Vec::new();
    walk("", baseline, current, threshold_pct, &mut deltas);
    CheckReport {
        deltas,
        threshold_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(mm: f64, s_epoch: f64, circ: f64) -> Json {
        Json::parse(&format!(
            r#"{{"id":"F5","host_cpus":1,"threads":[1,2],"s_per_epoch":[{s_epoch},0.11],
                 "speedup":[1,1.19],"matmul_gflops":[{mm},7.4],
                 "circuits_per_s":[{circ},525605.0],"qubits":[2,4]}}"#
        ))
        .unwrap()
    }

    #[test]
    fn identical_records_pass() {
        let b = bench(7.66, 0.138, 1504534.9);
        let report = compare(&b, &b, 10.0);
        assert!(report.passed());
        // threads/qubits/host_cpus/id are config, never compared.
        assert!(report.deltas.iter().all(|d| !d.key.starts_with("threads")
            && !d.key.starts_with("qubits")
            && !d.key.starts_with("host_cpus")));
        // but every perf series is.
        assert!(report.deltas.iter().any(|d| d.key == "matmul_gflops[0]"));
        assert!(report.deltas.iter().any(|d| d.key == "s_per_epoch[1]"));
    }

    #[test]
    fn throughput_drop_beyond_threshold_fails() {
        let b = bench(8.0, 0.138, 1500000.0);
        let c = bench(6.0, 0.138, 1500000.0); // −25% GFLOP/s
        let report = compare(&b, &c, 10.0);
        assert!(!report.passed());
        let reg = report.regressions();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].key, "matmul_gflops[0]");
        assert!(report.render().contains("FAIL"));
    }

    #[test]
    fn latency_rise_beyond_threshold_fails_and_drop_passes() {
        let b = bench(8.0, 0.100, 1500000.0);
        // s/epoch +50% → regression; faster matmul is fine.
        let c = bench(9.0, 0.150, 1500000.0);
        let report = compare(&b, &c, 10.0);
        let reg = report.regressions();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].key, "s_per_epoch[0]");
        // Lower s/epoch must NOT regress.
        let faster = bench(8.0, 0.050, 1500000.0);
        assert!(compare(&b, &faster, 10.0).passed());
    }

    #[test]
    fn moves_within_threshold_pass() {
        let b = bench(8.0, 0.100, 1500000.0);
        let c = bench(7.6, 0.104, 1430000.0); // all ≈ 5%
        assert!(compare(&b, &c, 10.0).passed());
        assert!(!compare(&b, &c, 2.0).passed());
    }

    #[test]
    fn direction_inference() {
        assert_eq!(direction_of("matmul_gflops"), Some(Direction::HigherIsBetter));
        assert_eq!(direction_of("circuits_per_s"), Some(Direction::HigherIsBetter));
        assert_eq!(direction_of("speedup"), Some(Direction::HigherIsBetter));
        assert_eq!(direction_of("s_per_epoch"), Some(Direction::LowerIsBetter));
        assert_eq!(direction_of("ms"), Some(Direction::LowerIsBetter));
        assert_eq!(direction_of("wall_s"), Some(Direction::LowerIsBetter));
        assert_eq!(direction_of("threads"), None);
        assert_eq!(direction_of("qubits"), None);
        assert_eq!(direction_of("elementwise_len"), None);
        // "elementwise" must not fuzzy-match the "ms" rule.
        assert_eq!(direction_of("elementwise"), None);
    }

    #[test]
    fn kernels_record_shape_is_gated_too() {
        let b = Json::parse(r#"{"id":"KERNELS","threads":4,"ms":[1.0,2.0],"gflops":[8.0,4.0]}"#)
            .unwrap();
        let c = Json::parse(r#"{"id":"KERNELS","threads":4,"ms":[1.5,2.0],"gflops":[8.0,4.0]}"#)
            .unwrap();
        let report = compare(&b, &c, 20.0);
        let reg = report.regressions();
        assert_eq!(reg.len(), 1);
        assert_eq!(reg[0].key, "ms[0]");
    }

    #[test]
    fn disjoint_records_produce_no_deltas() {
        let b = Json::parse(r#"{"a_gflops":[1.0]}"#).unwrap();
        let c = Json::parse(r#"{"b_gflops":[1.0]}"#).unwrap();
        let report = compare(&b, &c, 10.0);
        assert!(report.deltas.is_empty());
        assert!(report.render().contains("no comparable perf metrics"));
    }
}
