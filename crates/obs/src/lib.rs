//! # qpinn-obs
//!
//! The *consumption* side of the qpinn telemetry stack (`qpinn-telemetry`
//! produces spans/metrics/events; this crate turns them into things an
//! operator can look at), std-only like the rest of the workspace:
//!
//! * [`server`] — an embedded HTTP endpoint ([`MetricsServer`], built on
//!   `std::net::TcpListener`, no framework) serving `/metrics`
//!   (Prometheus text exposition of the live registry), `/metrics.json`
//!   (the `qpinn-metrics-v1` snapshot), `/healthz`, and `/progress`
//!   (current epoch / loss / s-per-epoch / ETA of the running training).
//!   Opt-in from every bench binary via `--serve-metrics ADDR`, or
//!   programmatically for library users.
//! * [`progress`] — the [`ProgressTracker`] sink that keeps the latest
//!   training state for `/progress`, fed by `train_progress` marks or a
//!   [`qpinn_core::trainer::ProgressHook`].
//! * [`trace`] — converts a telemetry JSONL stream into Chrome
//!   `trace_event` JSON loadable in Perfetto / `chrome://tracing`.
//! * [`flame`] — per-phase self-time/total-time accounting over the span
//!   stream (flame table, per-epoch breakdown).
//! * [`pool`] — work-stealing pool balance report from `pool_stats`
//!   events.
//! * [`check`] — the perf regression gate behind `qpinn-obs check`:
//!   diffs a current benchmark record (GFLOP/s, s/epoch, circuits/s)
//!   against a committed baseline such as `BENCH_parallel.json` and
//!   fails on regressions beyond a threshold.
//! * [`http`] — the minimal HTTP/1.1 request/response plumbing shared
//!   by [`MetricsServer`] and the `qpinn-serve` inference server.
//! * [`snapshots`] — checkpoint-directory inspection (`qpinn-obs
//!   snapshots DIR`): id/version/epoch/bytes/CRC status per `.qps` file
//!   without decoding full tensors.
//! * [`requests`] — per-route RED table (`qpinn-obs requests`) over a
//!   `qpinn-access-v1` access log produced by the serve plane: request
//!   rate, error/shed percentages, and exact p50/p99/max latency from
//!   the recorded samples.
//! * [`slo`] — declarative latency / error-budget objectives
//!   (`qpinn-obs slo`) evaluated against an access log, with
//!   pass/violated exit codes mirroring [`check`].
//! * [`runs`] — cross-run training forensics (`qpinn-obs runs
//!   {list,show,diff,regress}`) over the durable `qpinn-run-v1` store
//!   written by `qpinn_core::runs`: run tables, trajectory views,
//!   config/metric diffs, and a regression gate against a baseline run.
//!
//! The `qpinn-obs` binary exposes [`trace`], [`flame`], [`pool`],
//! [`check`], [`snapshots`], [`requests`], [`slo`], and [`runs`] as
//! subcommands; see its `--help`.

#![deny(missing_docs)]

pub mod check;
pub mod flame;
pub mod http;
pub mod pool;
pub mod progress;
pub mod requests;
pub mod runs;
pub mod server;
pub mod slo;
pub mod snapshots;
pub mod trace;

pub use check::{compare, CheckReport, Direction, MetricDelta};
pub use progress::{ProgressTracker, ProgressView};
pub use server::MetricsServer;

use qpinn_core::report::Json;

/// Parse a telemetry JSONL stream into one [`Json`] value per
/// non-empty line, with line numbers in error messages.
pub fn parse_jsonl(text: &str) -> Result<Vec<Json>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        out.push(Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?);
    }
    Ok(out)
}

/// Field lookup inside an event's `fields` object, as a finite number.
pub(crate) fn field_num(event: &Json, key: &str) -> Option<f64> {
    event.get("fields")?.get(key)?.as_num()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_jsonl_skips_blanks_and_reports_line_numbers() {
        let good = "{\"a\":1}\n\n{\"b\":2}\n";
        assert_eq!(parse_jsonl(good).unwrap().len(), 2);
        let err = parse_jsonl("{\"a\":1}\nnot json\n").unwrap_err();
        assert!(err.starts_with("line 2:"), "{err}");
    }
}
