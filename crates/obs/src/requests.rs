//! Per-route RED report over a `qpinn-access-v1` access log.
//!
//! `qpinn-obs requests ACCESS.jsonl` renders, per route: request count,
//! rate, error percentage (5xx), shed percentage (429), and p50/p99/max
//! end-to-end latency. Percentiles are computed from the **exact**
//! recorded `total_ns` values (the access log keeps every sample), not
//! from the registry's log2 histogram buckets — so a p99 here is a real
//! observed request, not a bucket upper edge. Latency quantiles exclude
//! shed requests (a 429 answered in microseconds says nothing about
//! served latency); error and shed percentages count every record.

use qpinn_core::report::Json;
use std::collections::BTreeMap;

/// One parsed access-log record (the subset the reports consume).
#[derive(Clone, Debug, Default)]
pub struct AccessEntry {
    /// Request trace id.
    pub trace: String,
    /// Completion timestamp (ns, process epoch).
    pub ts_ns: u64,
    /// Route path; empty for connection-queue sheds.
    pub route: String,
    /// `id@version` or empty.
    pub model: String,
    /// HTTP status code.
    pub status: u16,
    /// Shed reason or empty.
    pub shed: String,
    /// Requests coalesced into this request's batch.
    pub batch: u64,
    /// Queue-wait nanoseconds.
    pub queue_ns: u64,
    /// Batch-linger nanoseconds.
    pub batch_ns: u64,
    /// Forward-pass nanoseconds.
    pub compute_ns: u64,
    /// End-to-end nanoseconds.
    pub total_ns: u64,
}

/// Parse a `qpinn-access-v1` JSONL stream. Strict: every non-blank line
/// must be a `qpinn-access-v1` object (errors carry the line number).
pub fn parse_access_log(text: &str) -> Result<Vec<AccessEntry>, String> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let j = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        let v = j.get("v").and_then(Json::as_str).unwrap_or("");
        if v != "qpinn-access-v1" {
            return Err(format!(
                "line {}: not a qpinn-access-v1 record (v={v:?})",
                i + 1
            ));
        }
        let s = |key: &str| {
            j.get(key)
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string()
        };
        let n = |key: &str| j.get(key).and_then(Json::as_num).unwrap_or(0.0) as u64;
        out.push(AccessEntry {
            trace: s("trace"),
            ts_ns: n("ts_ns"),
            route: s("route"),
            model: s("model"),
            status: n("status") as u16,
            shed: s("shed"),
            batch: n("batch"),
            queue_ns: n("queue_ns"),
            batch_ns: n("batch_ns"),
            compute_ns: n("compute_ns"),
            total_ns: n("total_ns"),
        });
    }
    Ok(out)
}

/// Exact quantile over a sorted sample set: the smallest recorded value
/// with at least `q` of the mass at or below it (empty → 0).
pub fn quantile_exact(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (q * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

struct RouteAcc {
    count: u64,
    errors: u64,
    sheds: u64,
    served_ns: Vec<u64>,
}

/// Render the per-route RED table for an access log.
pub fn report(text: &str) -> Result<String, String> {
    let entries = parse_access_log(text)?;
    if entries.is_empty() {
        return Ok("access log is empty\n".to_string());
    }
    let mut routes: BTreeMap<String, RouteAcc> = BTreeMap::new();
    let (mut ts_min, mut ts_max) = (u64::MAX, 0u64);
    for e in &entries {
        ts_min = ts_min.min(e.ts_ns);
        ts_max = ts_max.max(e.ts_ns);
        let label = if e.route.is_empty() {
            "(conn-shed)".to_string()
        } else {
            e.route.clone()
        };
        let acc = routes.entry(label).or_insert(RouteAcc {
            count: 0,
            errors: 0,
            sheds: 0,
            served_ns: Vec::new(),
        });
        acc.count += 1;
        if e.status >= 500 {
            acc.errors += 1;
        }
        if e.status == 429 {
            acc.sheds += 1;
        } else {
            acc.served_ns.push(e.total_ns);
        }
    }
    let wall_s = (ts_max.saturating_sub(ts_min)) as f64 / 1e9;
    let mut out = String::new();
    out.push_str(&format!(
        "{:<24} {:>6} {:>8} {:>6} {:>6} {:>10} {:>10} {:>10}\n",
        "ROUTE", "REQS", "RATE/S", "ERR%", "SHED%", "P50(ms)", "P99(ms)", "MAX(ms)"
    ));
    let mut render_row = |label: &str, acc: &RouteAcc| {
        let mut lat = acc.served_ns.clone();
        lat.sort_unstable();
        let pct = |n: u64| 100.0 * n as f64 / acc.count as f64;
        let ms = |ns: u64| ns as f64 / 1e6;
        let rate = if wall_s > 0.0 {
            format!("{:.1}", acc.count as f64 / wall_s)
        } else {
            "-".to_string()
        };
        out.push_str(&format!(
            "{:<24} {:>6} {:>8} {:>6.1} {:>6.1} {:>10.3} {:>10.3} {:>10.3}\n",
            label,
            acc.count,
            rate,
            pct(acc.errors),
            pct(acc.sheds),
            ms(quantile_exact(&lat, 0.50)),
            ms(quantile_exact(&lat, 0.99)),
            ms(lat.last().copied().unwrap_or(0)),
        ));
    };
    let mut total = RouteAcc {
        count: 0,
        errors: 0,
        sheds: 0,
        served_ns: Vec::new(),
    };
    for (label, acc) in &routes {
        total.count += acc.count;
        total.errors += acc.errors;
        total.sheds += acc.sheds;
        total.served_ns.extend_from_slice(&acc.served_ns);
        render_row(label, acc);
    }
    if routes.len() > 1 {
        render_row("TOTAL", &total);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(route: &str, status: u16, shed: &str, total_ns: u64, ts: u64) -> String {
        format!(
            r#"{{"v":"qpinn-access-v1","trace":"t{ts}","ts_ns":{ts},"route":"{route}","model":"m@1","status":{status},"shed":"{shed}","batch":1,"points":2,"queue_ns":10,"batch_ns":20,"compute_ns":30,"serialize_ns":5,"total_ns":{total_ns}}}"#
        )
    }

    #[test]
    fn parses_and_reports_per_route() {
        let log = [
            line("/v1/eval", 200, "", 2_000_000, 1_000_000_000),
            line("/v1/eval", 200, "", 4_000_000, 1_500_000_000),
            line("/v1/eval", 429, "queue_full", 10_000, 2_000_000_000),
            line("/v1/models", 200, "", 500_000, 3_000_000_000),
            line("/v1/eval", 500, "", 1_000_000, 2_500_000_000),
        ]
        .join("\n");
        let entries = parse_access_log(&log).unwrap();
        assert_eq!(entries.len(), 5);
        assert_eq!(entries[2].shed, "queue_full");
        let table = report(&log).unwrap();
        assert!(table.contains("/v1/eval"), "{table}");
        assert!(table.contains("/v1/models"), "{table}");
        assert!(table.contains("TOTAL"), "{table}");
        // 4 eval reqs, 1 is 5xx → 25%, 1 is 429 → 25%.
        let eval_row = table.lines().find(|l| l.starts_with("/v1/eval")).unwrap();
        assert!(eval_row.contains("25.0"), "{eval_row}");
    }

    #[test]
    fn exact_quantiles_use_recorded_values() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert_eq!(quantile_exact(&sorted, 0.50), 50);
        assert_eq!(quantile_exact(&sorted, 0.99), 99);
        assert_eq!(quantile_exact(&sorted, 1.0), 100);
        assert_eq!(quantile_exact(&[7], 0.99), 7);
        assert_eq!(quantile_exact(&[], 0.5), 0);
    }

    #[test]
    fn rejects_foreign_lines() {
        let err = parse_access_log("{\"v\":1,\"kind\":\"span\"}").unwrap_err();
        assert!(err.contains("line 1"), "{err}");
    }
}
