//! Declarative SLO evaluation over a `qpinn-access-v1` access log.
//!
//! `qpinn-obs slo ACCESS.jsonl --objective '/v1/eval p99_ms<=50'` parses
//! each objective as `ROUTE METRIC<=VALUE`, evaluates it against the
//! exact recorded samples, and exits 0 (all met) / 1 (violated) /
//! 2 (usage or parse error) — the same contract as `qpinn-obs check`.
//!
//! * `ROUTE` is a request path (`/v1/eval`) or `*` for all records.
//! * `METRIC` is one of `p50_ms`, `p99_ms`, `max_ms` (end-to-end latency
//!   quantiles over non-shed requests), `error_pct` (5xx share of all
//!   matching records), or `shed_pct` (429 share).
//! * An objective with **no matching records fails**: an SLO that was
//!   never exercised is not met, and a gate that silently passes on an
//!   empty log would hide a broken capture pipeline.

use crate::requests::{parse_access_log, quantile_exact, AccessEntry};

/// Which measurement an objective constrains.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Metric {
    /// Median end-to-end latency, milliseconds (non-shed requests).
    P50Ms,
    /// 99th-percentile end-to-end latency, milliseconds (non-shed).
    P99Ms,
    /// Worst observed end-to-end latency, milliseconds (non-shed).
    MaxMs,
    /// Percentage of matching records with a 5xx status.
    ErrorPct,
    /// Percentage of matching records shed with a 429.
    ShedPct,
}

impl Metric {
    fn name(self) -> &'static str {
        match self {
            Metric::P50Ms => "p50_ms",
            Metric::P99Ms => "p99_ms",
            Metric::MaxMs => "max_ms",
            Metric::ErrorPct => "error_pct",
            Metric::ShedPct => "shed_pct",
        }
    }
}

/// One parsed objective: `ROUTE METRIC<=VALUE`.
#[derive(Clone, Debug)]
pub struct Objective {
    /// Route to match, or `*` for every record.
    pub route: String,
    /// Constrained measurement.
    pub metric: Metric,
    /// Inclusive upper bound.
    pub max: f64,
}

/// Parse `ROUTE METRIC<=VALUE` (whitespace between route and the rest).
pub fn parse_objective(spec: &str) -> Result<Objective, String> {
    let spec = spec.trim();
    let (route, rest) = spec
        .split_once(char::is_whitespace)
        .ok_or_else(|| format!("objective {spec:?}: expected `ROUTE METRIC<=VALUE`"))?;
    let (metric_name, value) = rest
        .trim()
        .split_once("<=")
        .ok_or_else(|| format!("objective {spec:?}: expected `METRIC<=VALUE`"))?;
    let metric = match metric_name.trim() {
        "p50_ms" => Metric::P50Ms,
        "p99_ms" => Metric::P99Ms,
        "max_ms" => Metric::MaxMs,
        "error_pct" => Metric::ErrorPct,
        "shed_pct" => Metric::ShedPct,
        other => {
            return Err(format!(
                "objective {spec:?}: unknown metric {other:?} \
                 (want p50_ms|p99_ms|max_ms|error_pct|shed_pct)"
            ))
        }
    };
    let max: f64 = value
        .trim()
        .parse()
        .map_err(|_| format!("objective {spec:?}: bad bound {value:?}"))?;
    if !max.is_finite() || max < 0.0 {
        return Err(format!("objective {spec:?}: bound must be finite and >= 0"));
    }
    Ok(Objective {
        route: route.to_string(),
        metric,
        max,
    })
}

/// The outcome of one objective against one log.
#[derive(Clone, Debug)]
pub struct SloOutcome {
    /// The objective evaluated.
    pub objective: Objective,
    /// Observed value, or `None` when no records matched the route.
    pub observed: Option<f64>,
    /// Matching record count.
    pub n: u64,
    /// Whether the objective is met.
    pub pass: bool,
}

/// All outcomes for one evaluation run.
#[derive(Clone, Debug, Default)]
pub struct SloReport {
    /// One row per objective, in input order.
    pub rows: Vec<SloOutcome>,
}

impl SloReport {
    /// True when every objective is met.
    pub fn passed(&self) -> bool {
        self.rows.iter().all(|r| r.pass)
    }

    /// Human-readable table, one line per objective.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            let observed = match r.observed {
                Some(v) => format!("{v:.3}"),
                None => "no data".to_string(),
            };
            out.push_str(&format!(
                "{} {:<24} {:>9} <= {:<9} observed {:>9}  (n={})\n",
                if r.pass { "PASS" } else { "FAIL" },
                r.objective.route,
                r.objective.metric.name(),
                format!("{:.3}", r.objective.max),
                observed,
                r.n,
            ));
        }
        let verdict = if self.passed() {
            "SLO: all objectives met"
        } else {
            "SLO: VIOLATED"
        };
        out.push_str(verdict);
        out.push('\n');
        out
    }
}

fn observe(entries: &[&AccessEntry], metric: Metric) -> Option<f64> {
    if entries.is_empty() {
        return None;
    }
    let pct_where = |pred: fn(&AccessEntry) -> bool| {
        let hits = entries.iter().filter(|e| pred(e)).count();
        Some(100.0 * hits as f64 / entries.len() as f64)
    };
    match metric {
        Metric::ErrorPct => pct_where(|e| e.status >= 500),
        Metric::ShedPct => pct_where(|e| e.status == 429),
        lat => {
            let mut served: Vec<u64> = entries
                .iter()
                .filter(|e| e.status != 429)
                .map(|e| e.total_ns)
                .collect();
            if served.is_empty() {
                return None;
            }
            served.sort_unstable();
            let ns = match lat {
                Metric::P50Ms => quantile_exact(&served, 0.50),
                Metric::P99Ms => quantile_exact(&served, 0.99),
                _ => *served.last().unwrap(),
            };
            Some(ns as f64 / 1e6)
        }
    }
}

/// Evaluate objectives against a `qpinn-access-v1` JSONL log.
pub fn evaluate(jsonl: &str, objectives: &[Objective]) -> Result<SloReport, String> {
    if objectives.is_empty() {
        return Err("no objectives given".to_string());
    }
    let entries = parse_access_log(jsonl)?;
    let mut rows = Vec::with_capacity(objectives.len());
    for o in objectives {
        let matching: Vec<&AccessEntry> = entries
            .iter()
            .filter(|e| o.route == "*" || e.route == o.route)
            .collect();
        let observed = observe(&matching, o.metric);
        let pass = observed.is_some_and(|v| v <= o.max);
        rows.push(SloOutcome {
            objective: o.clone(),
            observed,
            n: matching.len() as u64,
            pass,
        });
    }
    Ok(SloReport { rows })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(route: &str, status: u16, shed: &str, total_ns: u64) -> String {
        format!(
            r#"{{"v":"qpinn-access-v1","trace":"t","ts_ns":1,"route":"{route}","model":"m@1","status":{status},"shed":"{shed}","batch":1,"points":2,"queue_ns":10,"batch_ns":20,"compute_ns":30,"serialize_ns":5,"total_ns":{total_ns}}}"#
        )
    }

    fn sample_log() -> String {
        [
            line("/v1/eval", 200, "", 2_000_000),
            line("/v1/eval", 200, "", 4_000_000),
            line("/v1/eval", 429, "queue_full", 10_000),
            line("/v1/eval", 500, "", 9_000_000),
        ]
        .join("\n")
    }

    #[test]
    fn parses_objectives_and_rejects_bad_specs() {
        let o = parse_objective("/v1/eval p99_ms<=50").unwrap();
        assert_eq!(o.route, "/v1/eval");
        assert_eq!(o.metric, Metric::P99Ms);
        assert_eq!(o.max, 50.0);
        let o = parse_objective("  *  error_pct<=0.5 ").unwrap();
        assert_eq!(o.route, "*");
        assert_eq!(o.metric, Metric::ErrorPct);
        assert!(parse_objective("p99_ms<=50").is_err());
        assert!(parse_objective("/v1/eval p42_ms<=50").is_err());
        assert!(parse_objective("/v1/eval p99_ms<=banana").is_err());
        assert!(parse_objective("/v1/eval p99_ms<=-1").is_err());
    }

    #[test]
    fn evaluates_latency_error_and_shed_objectives() {
        let log = sample_log();
        let objectives = vec![
            parse_objective("/v1/eval p50_ms<=5").unwrap(),
            parse_objective("/v1/eval max_ms<=5").unwrap(),
            parse_objective("* error_pct<=30").unwrap(),
            parse_objective("* shed_pct<=10").unwrap(),
        ];
        let report = evaluate(&log, &objectives).unwrap();
        assert!(report.rows[0].pass, "{}", report.render());
        // max latency is 9ms > 5ms.
        assert!(!report.rows[1].pass, "{}", report.render());
        // 1 of 4 is 5xx = 25% <= 30.
        assert!(report.rows[2].pass, "{}", report.render());
        // 1 of 4 shed = 25% > 10.
        assert!(!report.rows[3].pass, "{}", report.render());
        assert!(!report.passed());
        assert!(report.render().contains("SLO: VIOLATED"));
    }

    #[test]
    fn no_matching_records_fails() {
        let report = evaluate(
            &sample_log(),
            &[parse_objective("/v1/train p50_ms<=100").unwrap()],
        )
        .unwrap();
        assert!(!report.rows[0].pass);
        assert!(report.rows[0].observed.is_none());
        assert!(report.render().contains("no data"), "{}", report.render());
    }

    #[test]
    fn empty_objective_list_is_a_usage_error() {
        assert!(evaluate(&sample_log(), &[]).is_err());
    }
}
