//! Checkpoint-directory inspection: the report behind `qpinn-obs
//! snapshots DIR`.
//!
//! Renders one row per `.qps` file — version (the epoch/model-version
//! number in the file name), run id, next epoch, byte size, eval error,
//! and CRC status — using [`qpinn_persist::SnapshotStore::entries`],
//! which verifies checksums but never decodes parameter tensors, so the
//! listing is cheap even over gigabyte checkpoints. A model registry
//! directory tree (`<root>/<id>/*.qps`, as written by `qpinn-serve`) is
//! also accepted: pass `--recursive` to walk one level of
//! subdirectories.

use qpinn_core::report::TextTable;
use qpinn_persist::SnapshotStore;

/// Human-readable byte size (binary prefixes).
fn fmt_bytes(b: u64) -> String {
    const KIB: f64 = 1024.0;
    let b = b as f64;
    if b >= KIB * KIB {
        format!("{:.2} MiB", b / (KIB * KIB))
    } else if b >= KIB {
        format!("{:.1} KiB", b / KIB)
    } else {
        format!("{b:.0} B")
    }
}

/// Render the snapshot listing for one store directory. Returns the
/// table text and the number of corrupt files found (so callers can
/// choose an exit code).
pub fn report(dir: &std::path::Path) -> Result<(String, usize), String> {
    let store = SnapshotStore::open(dir).map_err(|e| format!("opening {}: {e}", dir.display()))?;
    let entries = store.entries();
    let mut table = TextTable::new(&["version", "run id", "next epoch", "bytes", "eval error", "crc"]);
    let mut corrupt = 0usize;
    for e in &entries {
        match &e.meta {
            Some(m) => table.row(&[
                e.epoch.to_string(),
                m.run_id.clone(),
                m.next_epoch.to_string(),
                fmt_bytes(e.bytes),
                format!("{:.3e}", m.eval_error),
                "ok".into(),
            ]),
            None => {
                corrupt += 1;
                table.row(&[
                    e.epoch.to_string(),
                    "?".into(),
                    "?".into(),
                    fmt_bytes(e.bytes),
                    "?".into(),
                    format!(
                        "CORRUPT: {}",
                        e.error.as_deref().unwrap_or("unreadable")
                    ),
                ]);
            }
        }
    }
    let mut out = format!("{}: {} snapshot(s)\n", dir.display(), entries.len());
    if !entries.is_empty() {
        out.push_str(&table.render());
    }
    Ok((out, corrupt))
}

/// Render reports for `dir` and (with `recursive`) each immediate
/// subdirectory that holds snapshots — the layout of a `qpinn-serve`
/// models directory. Returns the combined text and total corrupt count.
pub fn report_tree(dir: &std::path::Path, recursive: bool) -> Result<(String, usize), String> {
    let (mut out, mut corrupt) = report(dir)?;
    if recursive {
        let mut subdirs: Vec<_> = std::fs::read_dir(dir)
            .map_err(|e| format!("reading {}: {e}", dir.display()))?
            .flatten()
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        subdirs.sort();
        for sub in subdirs {
            let (text, c) = report(&sub)?;
            out.push('\n');
            out.push_str(&text);
            corrupt += c;
        }
    }
    Ok((out, corrupt))
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpinn_persist::{RetentionPolicy, RunMeta, Snapshot, SnapshotStore, TrainLogRecord};

    fn sample(run_id: &str, epoch: u64, err: f64) -> Snapshot {
        let mut params = qpinn_nn::ParamSet::new();
        params.add("w", qpinn_tensor::Tensor::from_slice(&[1.0, 2.0]));
        Snapshot {
            meta: RunMeta {
                run_id: run_id.into(),
                next_epoch: epoch,
                planned_epochs: 100,
                eval_error: err,
            },
            params,
            optim: qpinn_optim::Adam::new(1e-3).export_state(),
            log: TrainLogRecord::default(),
            task_state: Vec::new(),
        }
    }

    #[test]
    fn report_lists_intact_and_corrupt_rows() {
        let dir = std::env::temp_dir().join(format!("qpinn-obs-snap-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = SnapshotStore::open(&dir).unwrap();
        store.save(&sample("demo", 10, 0.5), &RetentionPolicy::keep_all()).unwrap();
        let p = store.save(&sample("demo", 20, 0.25), &RetentionPolicy::keep_all()).unwrap();
        let mut bytes = std::fs::read(&p).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        std::fs::write(&p, &bytes).unwrap();

        let (text, corrupt) = report(&dir).unwrap();
        assert_eq!(corrupt, 1);
        assert!(text.contains("2 snapshot(s)"), "{text}");
        assert!(text.contains("demo"), "{text}");
        assert!(text.contains("CORRUPT"), "{text}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn report_tree_walks_model_subdirectories() {
        let root = std::env::temp_dir().join(format!("qpinn-obs-snaptree-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let sub = root.join("wave-model");
        let store = SnapshotStore::open(&sub).unwrap();
        store.save(&sample("wave-model", 1, 0.1), &RetentionPolicy::keep_all()).unwrap();
        let (text, corrupt) = report_tree(&root, true).unwrap();
        assert_eq!(corrupt, 0);
        assert!(text.contains("wave-model"), "{text}");
        assert!(text.contains("1 snapshot(s)"), "{text}");
        std::fs::remove_dir_all(&root).unwrap();
    }
}
