//! The embedded metrics/health HTTP endpoint.
//!
//! A deliberately tiny HTTP/1.1 server on `std::net::TcpListener` — no
//! framework, no async runtime, no dependencies — because the four
//! routes it serves are all small, read-only GETs:
//!
//! | route           | body                                              |
//! |-----------------|---------------------------------------------------|
//! | `/metrics`      | Prometheus text exposition of the live registry   |
//! | `/metrics.json` | `qpinn-metrics-v1` snapshot JSON                  |
//! | `/progress`     | current epoch / loss / s-per-epoch / ETA          |
//! | `/healthz`      | `{"status":"ok",...}` liveness probe              |
//! | `/v1/runs`      | `qpinn-run-v1` run-record index (see [`runs_routes`]) |
//! | `/v1/runs/<id>` | one run's manifest + epoch series                 |
//!
//! One accept thread handles connections sequentially; every response
//! closes the connection. That is the right shape for a scrape endpoint
//! (Prometheus polls every few seconds) and keeps the server at zero
//! cost to the training threads — request handling only ever *reads*
//! atomic metric values.
//!
//! [`MetricsServer::start`] also installs the server's
//! [`ProgressTracker`] as a telemetry sink so `train_progress` marks
//! reach `/progress` without any trainer wiring. Note this flips the
//! telemetry layer out of its dormant state (spans start timing), which
//! is the documented cost of opting into live observation.

use crate::http::{read_request, Response};
use crate::progress::ProgressTracker;
use qpinn_core::trainer::ProgressHook;
use qpinn_telemetry as telemetry;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// A running metrics endpoint; see the module docs.
pub struct MetricsServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    tracker: Arc<ProgressTracker>,
    handle: Option<JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `"127.0.0.1:9095"`; port 0 picks a free port),
    /// install the progress tracker as a telemetry sink, and start the
    /// accept thread. The server runs until [`MetricsServer::stop`] or
    /// process exit.
    pub fn start(addr: impl ToSocketAddrs) -> std::io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let tracker = Arc::new(ProgressTracker::new());
        telemetry::install(tracker.clone());
        let shutdown = Arc::new(AtomicBool::new(false));
        let state = ServerState {
            tracker: tracker.clone(),
            shutdown: shutdown.clone(),
            started: Instant::now(),
        };
        let handle = std::thread::Builder::new()
            .name("qpinn-obs-http".into())
            .spawn(move || accept_loop(listener, state))?;
        Ok(MetricsServer {
            addr: local,
            shutdown,
            tracker,
            handle: Some(handle),
        })
    }

    /// The bound address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The tracker behind `/progress` (for direct updates in tests or
    /// embedders).
    pub fn tracker(&self) -> Arc<ProgressTracker> {
        self.tracker.clone()
    }

    /// A `TrainConfig::progress` hook feeding this server's `/progress`
    /// endpoint directly (no telemetry sink required).
    pub fn progress_hook(&self) -> ProgressHook {
        self.tracker.hook()
    }

    /// Stop accepting and join the server thread. (Does not uninstall
    /// the tracker sink: telemetry sinks are process-global and other
    /// sinks may be active; `telemetry::shutdown()` clears them all.)
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Unblock the accept() call with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

struct ServerState {
    tracker: Arc<ProgressTracker>,
    shutdown: Arc<AtomicBool>,
    started: Instant,
}

fn accept_loop(listener: TcpListener, state: ServerState) {
    for conn in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            return;
        }
        let Ok(stream) = conn else { continue };
        // A stalled client must not wedge the endpoint.
        let _ = stream.set_read_timeout(Some(Duration::from_secs(2)));
        let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
        let _ = handle_connection(stream, &state);
    }
}

/// Build the response for one (already parsed) metrics-endpoint request,
/// or `None` when the route is not one of the four read-only metrics
/// routes. Shared with `qpinn-serve`, which mounts the same routes on its
/// inference server; `started` anchors the `/healthz` uptime report.
pub fn metrics_routes(
    method: &str,
    path: &str,
    tracker: &ProgressTracker,
    started: Instant,
) -> Option<Response> {
    if method != "GET" {
        return None;
    }
    Some(match path {
        "/metrics" => Response {
            status: "200 OK",
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            extra_headers: Vec::new(),
            body: telemetry::prometheus::render(&telemetry::global().snapshot(), "qpinn_", &[]),
        },
        "/metrics.json" => Response::json(telemetry::global().snapshot().to_json()),
        "/progress" => Response::json(match tracker.latest() {
            Some(v) => v.to_json(),
            None => "{\"training\":false}".to_string(),
        }),
        "/healthz" => Response::json(format!(
            "{{\"status\":\"ok\",\"uptime_s\":{:.3}}}",
            started.elapsed().as_secs_f64()
        )),
        _ => return None,
    })
}

/// Build the response for a `qpinn-run-v1` store request, or `None`
/// when the path is not a runs route. Shared with `qpinn-serve`, which
/// mounts the same routes on its inference server against its
/// configured store directory.
///
/// | route           | body                                            |
/// |-----------------|-------------------------------------------------|
/// | `/v1/runs`      | `{"runs":[{run_id,task,seed,final_loss,...}]}`  |
/// | `/v1/runs/<id>` | `{"manifest":{...},"series":[...]}`             |
pub fn runs_routes(method: &str, path: &str, dir: &std::path::Path) -> Option<Response> {
    use qpinn_core::report::Json;
    if method != "GET" {
        return None;
    }
    if path == "/v1/runs" {
        let summaries = match qpinn_core::runs::list_runs(dir) {
            Ok(s) => s,
            Err(e) => {
                return Some(Response::json_status(
                    "500 Internal Server Error",
                    Json::obj(vec![("error", Json::Str(e.to_string()))]).to_string(),
                ))
            }
        };
        let rows = summaries
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("run_id", Json::Str(s.run_id.clone())),
                    ("task", Json::Str(s.task.clone())),
                    (
                        "seed",
                        s.seed.map(|v| Json::Num(v as f64)).unwrap_or(Json::Null),
                    ),
                    (
                        "final_loss",
                        s.final_loss.map(Json::Num).unwrap_or(Json::Null),
                    ),
                    ("outcome", Json::Str(s.outcome.clone())),
                    ("start_unix_ms", Json::Num(s.start_unix_ms as f64)),
                ])
            })
            .collect();
        let doc = Json::obj(vec![("runs", Json::Arr(rows))]);
        return Some(Response::json(doc.to_string()));
    }
    if let Some(id) = path.strip_prefix("/v1/runs/") {
        // Run ids are 16 hex digits; reject anything that could walk the
        // filesystem before it reaches a path join.
        if id.is_empty() || !id.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-') {
            return Some(Response::json_status(
                "400 Bad Request",
                "{\"error\":\"invalid run id\"}",
            ));
        }
        return Some(match qpinn_core::runs::load_run(dir, id) {
            Ok(rec) => {
                let doc = Json::obj(vec![
                    ("manifest", rec.manifest.to_json()),
                    ("series", Json::Arr(rec.series)),
                ]);
                Response::json(doc.to_string())
            }
            Err(e) => Response::json_status(
                "404 Not Found",
                Json::obj(vec![("error", Json::Str(format!("run {id}: {e}")))]).to_string(),
            ),
        });
    }
    None
}

fn handle_connection(stream: TcpStream, state: &ServerState) -> std::io::Result<()> {
    let (req, mut stream) = read_request(stream)?;
    let response = if req.method != "GET" {
        Response::text("405 Method Not Allowed", "method not allowed\n")
    } else {
        metrics_routes(&req.method, &req.path, &state.tracker, state.started)
            .or_else(|| runs_routes(&req.method, &req.path, &qpinn_core::runs::default_dir()))
            .unwrap_or_else(|| {
                Response::text(
                    "404 Not Found",
                    "not found; try /metrics /metrics.json /progress /healthz /v1/runs\n",
                )
            })
    };
    response.write_to(&mut stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::progress::ProgressView;
    use std::io::{Read, Write};

    /// Serializes the two server tests: both install sinks into the
    /// process-global telemetry dispatch, and the emitted `train_progress`
    /// mark in one must not land while the other asserts an idle tracker.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        use std::sync::{Mutex, OnceLock};
        static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
        LOCK.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// GET `path` against a live server over a real TCP socket.
    fn get(addr: SocketAddr, path: &str) -> (String, String) {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut buf = String::new();
        s.read_to_string(&mut buf).unwrap();
        let (head, body) = buf.split_once("\r\n\r\n").expect("header/body split");
        (head.to_string(), body.to_string())
    }

    #[test]
    fn serves_all_routes_over_tcp() {
        let _guard = test_lock();
        let server = MetricsServer::start("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        // Populate a counter so /metrics has content.
        telemetry::counter("obs.test.requests").add(3);

        let (head, body) = get(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200 OK"), "{head}");
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        qpinn_core::report::Json::parse(&body).unwrap();

        let (head, body) = get(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200 OK"));
        assert!(head.contains("text/plain; version=0.0.4"));
        assert!(
            body.contains("qpinn_obs_test_requests_total 3"),
            "missing counter in:\n{body}"
        );

        let (_, body) = get(addr, "/metrics.json");
        let snap = qpinn_core::report::Json::parse(&body).unwrap();
        assert_eq!(
            snap.get("schema").and_then(|s| s.as_str()),
            Some("qpinn-metrics-v1")
        );

        // /progress: idle first, then after a tracker update.
        let (_, body) = get(addr, "/progress");
        assert_eq!(body, "{\"training\":false}");
        server.tracker().update(ProgressView {
            epoch: 42,
            epochs_total: 100,
            loss: 0.5,
            s_per_epoch: 0.1,
            eta_s: 5.8,
            ..Default::default()
        });
        let (_, body) = get(addr, "/progress");
        let p = qpinn_core::report::Json::parse(&body).unwrap();
        assert_eq!(p.get("epoch").and_then(|v| v.as_num()), Some(42.0));
        assert_eq!(p.get("eta_s").and_then(|v| v.as_num()), Some(5.8));

        let (head, _) = get(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));

        server.stop();
    }

    #[test]
    fn progress_endpoint_follows_train_progress_marks() {
        let _guard = test_lock();
        let server = MetricsServer::start("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        // The tracker is installed as a sink: an emitted mark must show up.
        telemetry::emit(
            telemetry::Event::new(telemetry::Kind::Mark, "train_progress")
                .field("epoch", 7u64)
                .field("epochs_total", 20u64)
                .field("loss", 0.25),
        );
        let (_, body) = get(addr, "/progress");
        let p = qpinn_core::report::Json::parse(&body).unwrap();
        assert_eq!(p.get("epoch").and_then(|v| v.as_num()), Some(7.0));
        assert_eq!(p.get("loss").and_then(|v| v.as_num()), Some(0.25));
        server.stop();
    }
}
