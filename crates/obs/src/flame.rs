//! Per-phase time accounting over a telemetry span stream.
//!
//! Spans carry their full nesting path (`epoch/loss/forward`), so the
//! tree reconstructs without IDs: **total** time of a path is the sum of
//! its span durations, and **self** time subtracts the total of its
//! direct children (`epoch/loss`'s self time excludes
//! `epoch/loss/forward` but not sibling paths). The flame table ranks
//! phases by self time — the number that says where the CPU actually
//! went — and the per-epoch column divides by the number of `epoch`
//! spans so a 50-epoch smoke run and a 50k-epoch flagship run read on
//! the same scale.

use crate::field_num;
use qpinn_core::report::{Json, TextTable};
use std::collections::BTreeMap;

/// Aggregated timing for one span path.
#[derive(Clone, Debug, PartialEq)]
pub struct PhaseStat {
    /// Full `/`-joined span path.
    pub path: String,
    /// Number of spans recorded at this path.
    pub count: u64,
    /// Summed duration, nanoseconds.
    pub total_ns: f64,
    /// Total minus direct children's totals, nanoseconds.
    pub self_ns: f64,
}

/// Aggregate a JSONL stream into per-path phase statistics, sorted by
/// self time (descending). Also returns the number of `epoch` spans.
pub fn phase_stats(jsonl: &str) -> Result<(Vec<PhaseStat>, u64), String> {
    let events = crate::parse_jsonl(jsonl)?;
    let mut total: BTreeMap<String, (u64, f64)> = BTreeMap::new();
    for e in &events {
        if e.get("kind").and_then(Json::as_str) != Some("span") {
            continue;
        }
        let path = e
            .get("fields")
            .and_then(|f| f.get("path"))
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_string();
        let dur = field_num(e, "dur_ns").unwrap_or(0.0);
        let entry = total.entry(path).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += dur;
    }
    // Children's totals, attributed to the parent path.
    let mut child_total: BTreeMap<&str, f64> = BTreeMap::new();
    for (path, (_, t)) in &total {
        if let Some((parent, _)) = path.rsplit_once('/') {
            *child_total.entry(parent).or_insert(0.0) += t;
        }
    }
    let mut stats: Vec<PhaseStat> = total
        .iter()
        .map(|(path, (count, t))| PhaseStat {
            path: path.clone(),
            count: *count,
            total_ns: *t,
            self_ns: (t - child_total.get(path.as_str()).copied().unwrap_or(0.0)).max(0.0),
        })
        .collect();
    stats.sort_by(|a, b| b.self_ns.total_cmp(&a.self_ns));
    let n_epochs = total.get("epoch").map(|(c, _)| *c).unwrap_or(0);
    Ok((stats, n_epochs))
}

/// Render the flame table: top `top_n` phases by self time, with totals,
/// share of accounted time, and a per-epoch column when epoch spans are
/// present.
pub fn render(stats: &[PhaseStat], n_epochs: u64, top_n: usize) -> String {
    let grand_self: f64 = stats.iter().map(|s| s.self_ns).sum();
    let mut table = TextTable::new(&[
        "phase", "count", "self ms", "self %", "total ms", "ms/epoch",
    ]);
    for s in stats.iter().take(top_n.max(1)) {
        table.row(&[
            s.path.clone(),
            format!("{}", s.count),
            format!("{:.3}", s.self_ns / 1e6),
            format!("{:.1}", 100.0 * s.self_ns / grand_self.max(1.0)),
            format!("{:.3}", s.total_ns / 1e6),
            if n_epochs > 0 {
                format!("{:.3}", s.total_ns / 1e6 / n_epochs as f64)
            } else {
                "-".into()
            },
        ]);
    }
    let mut out = format!(
        "phase accounting over {} span path(s), {} epoch span(s); \
         accounted self time {:.3} ms\n",
        stats.len(),
        n_epochs,
        grand_self / 1e6
    );
    out.push_str(&table.render());
    out
}

/// One-call report for the CLI.
pub fn report(jsonl: &str, top_n: usize) -> Result<String, String> {
    let (stats, n_epochs) = phase_stats(jsonl)?;
    if stats.is_empty() {
        return Ok("no span events in stream (was the run telemetry-enabled?)\n".into());
    }
    Ok(render(&stats, n_epochs, top_n))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(ts: u64, name: &str, path: &str, dur: u64) -> String {
        format!(
            "{{\"v\":1,\"ts_ns\":{ts},\"kind\":\"span\",\"name\":\"{name}\",\"thread\":\"main\",\
             \"fields\":{{\"path\":\"{path}\",\"dur_ns\":{dur}}}}}"
        )
    }

    fn sample() -> String {
        // Two epochs: epoch = loss + step + untracked self time.
        [
            span(100, "forward", "epoch/loss/forward", 60),
            span(200, "loss", "epoch/loss", 100),
            span(300, "step", "epoch/step", 30),
            span(400, "epoch", "epoch", 150),
            span(500, "forward", "epoch/loss/forward", 40),
            span(600, "loss", "epoch/loss", 80),
            span(700, "step", "epoch/step", 50),
            span(800, "epoch", "epoch", 160),
        ]
        .join("\n")
    }

    #[test]
    fn self_time_subtracts_direct_children() {
        let (stats, n_epochs) = phase_stats(&sample()).unwrap();
        assert_eq!(n_epochs, 2);
        let by_path = |p: &str| stats.iter().find(|s| s.path == p).unwrap();
        // epoch: total 310; children loss(180) + step(80) → self 50.
        assert_eq!(by_path("epoch").total_ns, 310.0);
        assert_eq!(by_path("epoch").self_ns, 50.0);
        // loss: total 180, child forward(100) → self 80.
        assert_eq!(by_path("epoch/loss").self_ns, 80.0);
        // Leaves keep everything.
        assert_eq!(by_path("epoch/loss/forward").self_ns, 100.0);
        assert_eq!(by_path("epoch/step").count, 2);
        // Sorted by self time descending.
        assert!(stats.windows(2).all(|w| w[0].self_ns >= w[1].self_ns));
    }

    #[test]
    fn render_shows_per_epoch_column() {
        let (stats, n_epochs) = phase_stats(&sample()).unwrap();
        let text = render(&stats, n_epochs, 10);
        assert!(text.contains("epoch/loss/forward"), "{text}");
        assert!(text.contains("2 epoch span(s)"), "{text}");
    }

    #[test]
    fn empty_stream_is_not_an_error() {
        let text = report("", 10).unwrap();
        assert!(text.contains("no span events"));
    }
}
