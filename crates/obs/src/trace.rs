//! Telemetry JSONL → Chrome `trace_event` JSON.
//!
//! The output is the "JSON Object Format" of the Trace Event spec —
//! `{"traceEvents":[...]}` — loadable in Perfetto (ui.perfetto.dev) and
//! `chrome://tracing`:
//!
//! * telemetry `span` events become complete (`"ph":"X"`) events. A span
//!   line carries its *end* timestamp and duration, so the trace start
//!   is `ts_ns - dur_ns`; both convert to the spec's microseconds.
//! * `mark` and `warn` events become thread-scoped instant events
//!   (`"ph":"i"`, `"s":"t"`), categorized by kind so they can be
//!   filtered in the viewer.
//! * `metrics` events are dropped — aggregate snapshots have no
//!   timeline shape; `qpinn-obs flame` consumes those instead.
//!
//! Threads are numbered in order of first appearance and named via
//! `thread_name` metadata events, so the viewer shows `main`,
//! `qpinn-worker-0`, … as separate tracks.
//!
//! Serve-plane span events that carry a `trace` field (the per-request
//! spans: `request`, `request/queue`, `request/compute`, …) are routed
//! onto one track **per request** (`req:<trace-id>`) instead of their
//! emitting thread, so a Perfetto timeline shows each request's
//! queue → flush → compute decomposition alongside the pool and phase
//! tracks.

use crate::field_num;
use qpinn_core::report::Json;
use std::collections::BTreeMap;

/// Convert a telemetry JSONL stream into a Chrome trace document.
pub fn chrome_trace(jsonl: &str) -> Result<Json, String> {
    let events = crate::parse_jsonl(jsonl)?;
    let mut out: Vec<Json> = Vec::with_capacity(events.len());
    let mut tids: BTreeMap<String, f64> = BTreeMap::new();
    for e in &events {
        let kind = e.get("kind").and_then(Json::as_str).unwrap_or("");
        let name = e.get("name").and_then(Json::as_str).unwrap_or("?");
        let ts_ns = e.get("ts_ns").and_then(Json::as_num).unwrap_or(0.0);
        let thread = e.get("thread").and_then(Json::as_str).unwrap_or("?");
        // A traced request gets its own track regardless of which
        // worker/dispatcher thread emitted the span.
        let track = match e
            .get("fields")
            .and_then(|f| f.get("trace"))
            .and_then(Json::as_str)
        {
            Some(trace) if kind == "span" => format!("req:{trace}"),
            _ => thread.to_string(),
        };
        let next_tid = tids.len() as f64;
        let tid = *tids.entry(track.clone()).or_insert_with(|| {
            out.push(Json::obj(vec![
                ("name", Json::Str("thread_name".into())),
                ("ph", Json::Str("M".into())),
                ("pid", Json::Num(1.0)),
                ("tid", Json::Num(next_tid)),
                (
                    "args",
                    Json::obj(vec![("name", Json::Str(track.clone()))]),
                ),
            ]));
            next_tid
        });
        // Everything except the timing keys rides along as args.
        let args = match e.get("fields") {
            Some(Json::Obj(pairs)) => Json::Obj(
                pairs
                    .iter()
                    .filter(|(k, _)| k != "dur_ns")
                    .cloned()
                    .collect(),
            ),
            _ => Json::Obj(Vec::new()),
        };
        match kind {
            "span" => {
                let dur_ns = field_num(e, "dur_ns").unwrap_or(0.0);
                out.push(Json::obj(vec![
                    ("name", Json::Str(name.into())),
                    ("cat", Json::Str("span".into())),
                    ("ph", Json::Str("X".into())),
                    ("ts", Json::Num((ts_ns - dur_ns) / 1e3)),
                    ("dur", Json::Num(dur_ns / 1e3)),
                    ("pid", Json::Num(1.0)),
                    ("tid", Json::Num(tid)),
                    ("args", args),
                ]));
            }
            "mark" | "warn" => {
                out.push(Json::obj(vec![
                    ("name", Json::Str(name.into())),
                    ("cat", Json::Str(kind.into())),
                    ("ph", Json::Str("i".into())),
                    ("ts", Json::Num(ts_ns / 1e3)),
                    ("pid", Json::Num(1.0)),
                    ("tid", Json::Num(tid)),
                    ("s", Json::Str("t".into())),
                    ("args", args),
                ]));
            }
            _ => {}
        }
    }
    Ok(Json::obj(vec![
        ("traceEvents", Json::Arr(out)),
        ("displayTimeUnit", Json::Str("ms".into())),
    ]))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        r#"{"v":1,"ts_ns":100,"kind":"mark","name":"telemetry_start","thread":"main","fields":{"schema":1}}"#,
        "\n",
        r#"{"v":1,"ts_ns":5000,"kind":"span","name":"forward","thread":"main","fields":{"path":"epoch/loss/forward","dur_ns":3000}}"#,
        "\n",
        r#"{"v":1,"ts_ns":9000,"kind":"span","name":"epoch","thread":"main","fields":{"epoch":0,"path":"epoch","dur_ns":8000}}"#,
        "\n",
        r#"{"v":1,"ts_ns":9500,"kind":"warn","name":"non_finite_loss","thread":"qpinn-worker-0","fields":{"msg":"boom"}}"#,
        "\n",
        r#"{"v":1,"ts_ns":9900,"kind":"metrics","name":"final_metrics","thread":"main","fields":{"train.grad_evals":2}}"#,
        "\n",
    );

    #[test]
    fn converts_spans_marks_and_warns() {
        let doc = chrome_trace(SAMPLE).unwrap();
        let events = match doc.get("traceEvents").unwrap() {
            Json::Arr(v) => v,
            other => panic!("traceEvents not an array: {other:?}"),
        };
        // 2 thread_name metadata + 1 mark + 2 spans + 1 warn; metrics dropped.
        assert_eq!(events.len(), 6, "{events:?}");
        let forward = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("forward"))
            .unwrap();
        assert_eq!(forward.get("ph").and_then(Json::as_str), Some("X"));
        // end 5000 ns, dur 3000 ns → start 2 µs, dur 3 µs.
        assert_eq!(forward.get("ts").and_then(Json::as_num), Some(2.0));
        assert_eq!(forward.get("dur").and_then(Json::as_num), Some(3.0));
        let args = forward.get("args").unwrap();
        assert_eq!(
            args.get("path").and_then(Json::as_str),
            Some("epoch/loss/forward")
        );
        // The warn thread gets its own tid with a thread_name record.
        let warn = events
            .iter()
            .find(|e| e.get("cat").and_then(Json::as_str) == Some("warn"))
            .unwrap();
        let tid = warn.get("tid").and_then(Json::as_num).unwrap();
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("M")
                && e.get("tid").and_then(Json::as_num) == Some(tid)
                && e.get("args").and_then(|a| a.get("name")).and_then(Json::as_str)
                    == Some("qpinn-worker-0")
        }));
        assert!(!events
            .iter()
            .any(|e| e.get("name").and_then(Json::as_str) == Some("final_metrics")));
    }

    #[test]
    fn traced_request_spans_share_one_per_request_track() {
        let jsonl = concat!(
            r#"{"v":1,"ts_ns":5000,"kind":"span","name":"request","thread":"qpinn-serve-worker-0","fields":{"path":"request","dur_ns":4000,"trace":"cafe01","route":"/v1/eval"}}"#,
            "\n",
            r#"{"v":1,"ts_ns":4000,"kind":"span","name":"request_compute","thread":"qpinn-batch-m@1","fields":{"path":"request/compute","dur_ns":1000,"trace":"cafe01"}}"#,
            "\n",
            r#"{"v":1,"ts_ns":6000,"kind":"span","name":"epoch","thread":"main","fields":{"path":"epoch","dur_ns":100}}"#,
            "\n",
        );
        let doc = chrome_trace(jsonl).unwrap();
        let events = match doc.get("traceEvents").unwrap() {
            Json::Arr(v) => v,
            other => panic!("not an array: {other:?}"),
        };
        let spans: Vec<&Json> = events
            .iter()
            .filter(|e| e.get("cat").and_then(Json::as_str) == Some("span"))
            .collect();
        assert_eq!(spans.len(), 3);
        // Both traced spans land on the same tid despite different
        // emitting threads; the untraced epoch span does not.
        let req_tid = spans[0].get("tid").and_then(Json::as_num).unwrap();
        assert_eq!(spans[1].get("tid").and_then(Json::as_num), Some(req_tid));
        assert_ne!(spans[2].get("tid").and_then(Json::as_num), Some(req_tid));
        // The track is named after the trace id.
        assert!(events.iter().any(|e| {
            e.get("ph").and_then(Json::as_str) == Some("M")
                && e.get("tid").and_then(Json::as_num) == Some(req_tid)
                && e.get("args").and_then(|a| a.get("name")).and_then(Json::as_str)
                    == Some("req:cafe01")
        }));
    }

    #[test]
    fn output_round_trips_through_the_strict_parser() {
        let doc = chrome_trace(SAMPLE).unwrap();
        let text = doc.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.to_string(), text);
    }

    #[test]
    fn bad_input_reports_the_line() {
        let err = chrome_trace("{\"ok\":1}\ngarbage\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
    }
}
