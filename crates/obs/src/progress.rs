//! Live training-progress state for the `/progress` endpoint.
//!
//! A [`ProgressTracker`] is both a telemetry [`Sink`] (it watches the
//! event stream for `train_progress` marks, so installing it next to a
//! JSONL sink needs zero trainer wiring) and the target of a
//! [`qpinn_core::trainer::ProgressHook`] (for library users driving the
//! trainer directly, with or without any sink installed). Whichever
//! source fires, the latest snapshot is kept behind a mutex for the
//! server to render.

use qpinn_core::trainer::{Progress, ProgressHook};
use qpinn_telemetry::{Event, Kind, Sink, Value};
use std::sync::{Arc, Mutex};

/// The most recent training-progress observation.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ProgressView {
    /// Current epoch index.
    pub epoch: u64,
    /// Planned total epochs (0 when unknown).
    pub epochs_total: u64,
    /// Loss at that epoch.
    pub loss: f64,
    /// Global gradient norm at that epoch.
    pub grad_norm: f64,
    /// Learning rate at that epoch.
    pub lr: f64,
    /// Seconds per epoch over the last log interval (0 until known).
    pub s_per_epoch: f64,
    /// Estimated seconds to completion (0 until known).
    pub eta_s: f64,
    /// Telemetry timestamp of the observation (ns since telemetry start;
    /// 0 when the update came through a hook rather than an event).
    pub ts_ns: u64,
}

impl ProgressView {
    /// Serialize for the `/progress` endpoint.
    pub fn to_json(&self) -> String {
        fn num(v: f64) -> String {
            if v.is_finite() {
                format!("{v}")
            } else {
                "null".into()
            }
        }
        format!(
            "{{\"training\":true,\"epoch\":{},\"epochs_total\":{},\"loss\":{},\
             \"grad_norm\":{},\"lr\":{},\"s_per_epoch\":{},\"eta_s\":{},\"ts_ns\":{}}}",
            self.epoch,
            self.epochs_total,
            num(self.loss),
            num(self.grad_norm),
            num(self.lr),
            num(self.s_per_epoch),
            num(self.eta_s),
            self.ts_ns
        )
    }
}

/// Tracks the latest [`ProgressView`]; see the module docs.
#[derive(Debug, Default)]
pub struct ProgressTracker {
    state: Mutex<Option<ProgressView>>,
}

impl ProgressTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// The latest observation, if training has reported anything yet.
    pub fn latest(&self) -> Option<ProgressView> {
        *self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Store an observation (last write wins).
    pub fn update(&self, view: ProgressView) {
        *self.state.lock().unwrap_or_else(|e| e.into_inner()) = Some(view);
    }

    /// A [`ProgressHook`] for `TrainConfig::progress` that feeds this
    /// tracker directly — works even with no telemetry sink installed.
    pub fn hook(self: &Arc<Self>) -> ProgressHook {
        let me = Arc::clone(self);
        ProgressHook::new(move |p: &Progress| {
            me.update(ProgressView {
                epoch: p.epoch as u64,
                epochs_total: p.epochs_total as u64,
                loss: p.loss,
                grad_norm: p.grad_norm,
                lr: p.lr,
                s_per_epoch: p.s_per_epoch,
                eta_s: p.eta_s,
                ts_ns: 0,
            });
        })
    }
}

fn get_num(fields: &[(String, Value)], key: &str) -> Option<f64> {
    fields.iter().find(|(k, _)| k == key).and_then(|(_, v)| match v {
        Value::U64(x) => Some(*x as f64),
        Value::I64(x) => Some(*x as f64),
        Value::F64(x) => Some(*x),
        _ => None,
    })
}

impl Sink for ProgressTracker {
    fn record(&self, event: &Event) {
        if event.kind != Kind::Mark || event.name != "train_progress" {
            return;
        }
        let f = &event.fields;
        self.update(ProgressView {
            epoch: get_num(f, "epoch").unwrap_or(0.0) as u64,
            epochs_total: get_num(f, "epochs_total").unwrap_or(0.0) as u64,
            loss: get_num(f, "loss").unwrap_or(f64::NAN),
            grad_norm: get_num(f, "grad_norm").unwrap_or(f64::NAN),
            lr: get_num(f, "lr").unwrap_or(f64::NAN),
            s_per_epoch: get_num(f, "s_per_epoch").unwrap_or(0.0),
            eta_s: get_num(f, "eta_s").unwrap_or(0.0),
            ts_ns: event.ts_ns,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracker_captures_train_progress_marks_only() {
        let t = ProgressTracker::new();
        assert!(t.latest().is_none());
        t.record(&Event::new(Kind::Mark, "checkpoint_saved").field("epoch", 9u64));
        assert!(t.latest().is_none(), "unrelated marks must be ignored");
        t.record(
            &Event::new(Kind::Mark, "train_progress")
                .field("epoch", 150u64)
                .field("epochs_total", 2000u64)
                .field("loss", 0.125)
                .field("s_per_epoch", 0.02)
                .field("eta_s", 37.0),
        );
        let v = t.latest().unwrap();
        assert_eq!(v.epoch, 150);
        assert_eq!(v.epochs_total, 2000);
        assert_eq!(v.loss, 0.125);
        assert_eq!(v.eta_s, 37.0);
        let json = v.to_json();
        assert!(json.contains("\"training\":true"));
        assert!(json.contains("\"epoch\":150"));
        // /progress must always be parseable.
        qpinn_core::report::Json::parse(&json).unwrap();
    }

    #[test]
    fn hook_feeds_tracker_without_any_sink() {
        let t = Arc::new(ProgressTracker::new());
        let hook = t.hook();
        (hook.0)(&Progress {
            epoch: 10,
            epochs_total: 100,
            loss: 1.5,
            ..Default::default()
        });
        let v = t.latest().unwrap();
        assert_eq!(v.epoch, 10);
        assert_eq!(v.epochs_total, 100);
        assert_eq!(v.loss, 1.5);
    }
}
