//! PDE residual assembly from field jets.
//!
//! Coordinate convention for time-dependent problems: coordinate 0 is `x`,
//! coordinate 1 is `t`. The complex wavefunction `ψ = u + iv` is the field
//! pair `(u, v)` = output columns `(0, 1)`.

use qpinn_autodiff::jet::Jet;
use qpinn_autodiff::{Graph, Var};

/// The jets of one complex field split into real and imaginary parts.
pub struct SplitPsi {
    /// Real part jet.
    pub u: Jet,
    /// Imaginary part jet.
    pub v: Jet,
}

/// Split a 2-field output jet into `(u, v)` jets.
pub fn split_complex(g: &mut Graph, out: &Jet) -> SplitPsi {
    SplitPsi {
        u: out.col(g, 0),
        v: out.col(g, 1),
    }
}

/// Split an `n_fields`-column output jet into one jet per field, in
/// column order. The generic registry task uses this to hand each
/// [`qpinn_problems::PdeProblem`] residual builder a per-component view
/// regardless of the problem's output arity.
pub fn split_fields(g: &mut Graph, out: &Jet, n_fields: usize) -> Vec<Jet> {
    (0..n_fields).map(|i| out.col(g, i)).collect()
}

/// TDSE residuals for `i ψ_t = −½ψ_xx + Vψ`, as the real pair
///
/// `r_u = u_t + ½ v_xx − V v`,
/// `r_v = v_t − ½ u_xx + V u`.
///
/// `v_pot` is the `[batch, 1]` potential column at the collocation points.
pub fn tdse_residuals(g: &mut Graph, psi: &SplitPsi, v_pot: Var) -> (Var, Var) {
    let (u, v) = (&psi.u, &psi.v);
    // r_u = u_t + ½ v_xx − V·v
    let half_vxx = g.scale(v.dd[0], 0.5);
    let vv = g.mul(v_pot, v.v);
    let s = g.add(u.d[1], half_vxx);
    let ru = g.sub(s, vv);
    // r_v = v_t − ½ u_xx + V·u
    let half_uxx = g.scale(u.dd[0], 0.5);
    let vu = g.mul(v_pot, u.v);
    let s2 = g.sub(v.d[1], half_uxx);
    let rv = g.add(s2, vu);
    (ru, rv)
}

/// Focusing cubic NLS residuals for `i h_t + ½h_xx + g₀|h|²h = 0`:
///
/// `r_u = u_t + ½ v_xx + g₀(u² + v²) v`,
/// `r_v = v_t − ½ u_xx − g₀(u² + v²) u`.
pub fn nls_residuals(g: &mut Graph, psi: &SplitPsi, g0: f64) -> (Var, Var) {
    let (u, v) = (&psi.u, &psi.v);
    let u2 = g.square(u.v);
    let v2 = g.square(v.v);
    let dens = g.add(u2, v2);
    let gdens = g.scale(dens, g0);
    // r_u
    let half_vxx = g.scale(v.dd[0], 0.5);
    let nv = g.mul(gdens, v.v);
    let s = g.add(u.d[1], half_vxx);
    let ru = g.add(s, nv);
    // r_v
    let half_uxx = g.scale(u.dd[0], 0.5);
    let nu = g.mul(gdens, u.v);
    let s2 = g.sub(v.d[1], half_uxx);
    let rv = g.sub(s2, nu);
    (ru, rv)
}

/// 2D TDSE residuals for `i ψ_t = −½(ψ_xx + ψ_yy) + Vψ` with coordinate
/// convention `(x, y, t) = (0, 1, 2)`:
///
/// `r_u = u_t + ½(v_xx + v_yy) − V v`,
/// `r_v = v_t − ½(u_xx + u_yy) + V u`.
pub fn tdse2d_residuals(g: &mut Graph, psi: &SplitPsi, v_pot: Var) -> (Var, Var) {
    let (u, v) = (&psi.u, &psi.v);
    let v_lap = g.add(v.dd[0], v.dd[1]);
    let half_vlap = g.scale(v_lap, 0.5);
    let vv = g.mul(v_pot, v.v);
    let s = g.add(u.d[2], half_vlap);
    let ru = g.sub(s, vv);
    let u_lap = g.add(u.dd[0], u.dd[1]);
    let half_ulap = g.scale(u_lap, 0.5);
    let vu = g.mul(v_pot, u.v);
    let s2 = g.sub(v.d[2], half_ulap);
    let rv = g.add(s2, vu);
    (ru, rv)
}

/// Stationary residual `r = −½ψ″ + Vψ − Eψ` for a real field jet over the
/// single coordinate `x`, with a trainable `[1, 1]` eigenvalue node `e`.
pub fn eigen_residual(g: &mut Graph, psi: &Jet, v_pot: Var, e: Var) -> Var {
    let half_pp = g.scale(psi.dd[0], -0.5);
    let vpsi = g.mul(v_pot, psi.v);
    let epsi = g.matmul(psi.v, e);
    let s = g.add(half_pp, vpsi);
    g.sub(s, epsi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpinn_tensor::Tensor;

    /// Build jets for a *known analytic field* so residuals can be checked
    /// against hand-computed values. Field: u = sin(kx)·cos(ωt),
    /// v = cos(kx)·sin(ωt).
    fn analytic_jets(g: &mut Graph, xs: &[f64], ts: &[f64], k: f64, w: f64) -> SplitPsi {
        let n = xs.len();
        let mk =
            |f: &dyn Fn(f64, f64) -> f64| -> Vec<f64> { (0..n).map(|i| f(xs[i], ts[i])).collect() };
        let mut jet = |vals: Vec<f64>, dx: Vec<f64>, dt: Vec<f64>, dxx: Vec<f64>| -> Jet {
            let zero = g_constant_col(g, &vec![0.0; n]);
            let v = g_constant_col(g, &vals);
            let d0 = g_constant_col(g, &dx);
            let d1 = g_constant_col(g, &dt);
            let dd0 = g_constant_col(g, &dxx);
            Jet {
                v,
                d: vec![d0, d1],
                dd: vec![dd0, zero],
            }
        };
        let u = jet(
            mk(&|x, t| (k * x).sin() * (w * t).cos()),
            mk(&|x, t| k * (k * x).cos() * (w * t).cos()),
            mk(&|x, t| -w * (k * x).sin() * (w * t).sin()),
            mk(&|x, t| -k * k * (k * x).sin() * (w * t).cos()),
        );
        let v = jet(
            mk(&|x, t| (k * x).cos() * (w * t).sin()),
            mk(&|x, t| -k * (k * x).sin() * (w * t).sin()),
            mk(&|x, t| w * (k * x).cos() * (w * t).cos()),
            mk(&|x, t| -k * k * (k * x).cos() * (w * t).sin()),
        );
        SplitPsi { u, v }
    }

    fn g_constant_col(g: &mut Graph, v: &[f64]) -> qpinn_autodiff::Var {
        g.constant(Tensor::column(v))
    }

    #[test]
    fn plane_wave_solves_free_tdse_when_dispersion_matches() {
        // ψ = e^{i(kx − ωt)} with ω = k²/2 solves the free TDSE. In real
        // parts: u = cos(kx−ωt), v = sin(kx−ωt). Our analytic_jets field is
        // a standing wave built from such waves; instead check directly
        // with the traveling wave.
        let k = 2.0f64;
        let w = 0.5 * k * k;
        let xs = [0.3, 1.0, -0.7];
        let ts = [0.2, 0.6, 0.9];
        let n = xs.len();
        let mut g = Graph::new();
        let phase: Vec<f64> = (0..n).map(|i| k * xs[i] - w * ts[i]).collect();
        let u = Jet {
            v: g_constant_col(&mut g, &phase.iter().map(|p| p.cos()).collect::<Vec<_>>()),
            d: vec![
                g_constant_col(
                    &mut g,
                    &phase.iter().map(|p| -k * p.sin()).collect::<Vec<_>>(),
                ),
                g_constant_col(
                    &mut g,
                    &phase.iter().map(|p| w * p.sin()).collect::<Vec<_>>(),
                ),
            ],
            dd: vec![
                g_constant_col(
                    &mut g,
                    &phase.iter().map(|p| -k * k * p.cos()).collect::<Vec<_>>(),
                ),
                g_constant_col(&mut g, &vec![0.0; n]),
            ],
        };
        let v = Jet {
            v: g_constant_col(&mut g, &phase.iter().map(|p| p.sin()).collect::<Vec<_>>()),
            d: vec![
                g_constant_col(
                    &mut g,
                    &phase.iter().map(|p| k * p.cos()).collect::<Vec<_>>(),
                ),
                g_constant_col(
                    &mut g,
                    &phase.iter().map(|p| -w * p.cos()).collect::<Vec<_>>(),
                ),
            ],
            dd: vec![
                g_constant_col(
                    &mut g,
                    &phase.iter().map(|p| -k * k * p.sin()).collect::<Vec<_>>(),
                ),
                g_constant_col(&mut g, &vec![0.0; n]),
            ],
        };
        let psi = SplitPsi { u, v };
        let vpot = g_constant_col(&mut g, &vec![0.0; n]);
        let (ru, rv) = tdse_residuals(&mut g, &psi, vpot);
        assert!(g.value(ru).max_abs() < 1e-12, "{:?}", g.value(ru));
        assert!(g.value(rv).max_abs() < 1e-12);
    }

    #[test]
    fn standing_wave_residual_matches_hand_computation() {
        // For u = sin(kx)cos(ωt), v = cos(kx)sin(ωt), V = 0:
        // r_u = u_t + ½v_xx = −ω sin kx sin ωt − ½k² cos kx sin ωt.
        let (k, w) = (1.3, 0.9);
        let xs = [0.4, -1.1];
        let ts = [0.25, 0.8];
        let mut g = Graph::new();
        let psi = analytic_jets(&mut g, &xs, &ts, k, w);
        let vpot = g_constant_col(&mut g, &[0.0; 2]);
        let (ru, _rv) = tdse_residuals(&mut g, &psi, vpot);
        for i in 0..2 {
            let want = -w * (k * xs[i]).sin() * (w * ts[i]).sin()
                - 0.5 * k * k * (k * xs[i]).cos() * (w * ts[i]).sin();
            assert!(
                (g.value(ru).data()[i] - want).abs() < 1e-12,
                "i={i}: {} vs {want}",
                g.value(ru).data()[i]
            );
        }
    }

    #[test]
    fn nls_soliton_residual_vanishes() {
        // q = a sech(ax) e^{i a² t/2}: u = a sech cos φ, v = a sech sin φ,
        // φ = a²t/2. Hand-build the jets and check both residuals vanish.
        let a = 1.4f64;
        let xs = [0.0, 0.6, -1.2];
        let ts = [0.1, 0.5, 0.9];
        let n = xs.len();
        let mut g = Graph::new();
        let sech = |x: f64| 1.0 / (a * x).cosh();
        // spatial derivatives of s(x) = a·sech(ax):
        // s' = −a²·sech·tanh; s'' = a³·sech·(1 − 2sech²)·… use
        // (sech u)'' = sech u − 2 sech³ u with u = ax.
        let sval: Vec<f64> = xs.iter().map(|&x| a * sech(x)).collect();
        let sx: Vec<f64> = xs
            .iter()
            .map(|&x| -a * a * sech(x) * (a * x).tanh())
            .collect();
        let sxx: Vec<f64> = xs
            .iter()
            .map(|&x| a * a * a * (sech(x) - 2.0 * sech(x).powi(3)))
            .collect();
        let phi: Vec<f64> = ts.iter().map(|&t| 0.5 * a * a * t).collect();
        let col = |f: &dyn Fn(usize) -> f64| -> Vec<f64> { (0..n).map(f).collect() };
        let u = Jet {
            v: g_constant_col(&mut g, &col(&|i| sval[i] * phi[i].cos())),
            d: vec![
                g_constant_col(&mut g, &col(&|i| sx[i] * phi[i].cos())),
                g_constant_col(&mut g, &col(&|i| -0.5 * a * a * sval[i] * phi[i].sin())),
            ],
            dd: vec![
                g_constant_col(&mut g, &col(&|i| sxx[i] * phi[i].cos())),
                g_constant_col(&mut g, &vec![0.0; n]),
            ],
        };
        let v = Jet {
            v: g_constant_col(&mut g, &col(&|i| sval[i] * phi[i].sin())),
            d: vec![
                g_constant_col(&mut g, &col(&|i| sx[i] * phi[i].sin())),
                g_constant_col(&mut g, &col(&|i| 0.5 * a * a * sval[i] * phi[i].cos())),
            ],
            dd: vec![
                g_constant_col(&mut g, &col(&|i| sxx[i] * phi[i].sin())),
                g_constant_col(&mut g, &vec![0.0; n]),
            ],
        };
        let psi = SplitPsi { u, v };
        let (ru, rv) = nls_residuals(&mut g, &psi, 1.0);
        assert!(g.value(ru).max_abs() < 1e-12, "{:?}", g.value(ru));
        assert!(g.value(rv).max_abs() < 1e-12, "{:?}", g.value(rv));
    }

    #[test]
    fn eigen_residual_vanishes_for_exact_eigenpair() {
        // Infinite well on [0, π]: ψ = sin(x), E = ½.
        let xs = [0.3, 1.2, 2.5];
        let n = xs.len();
        let mut g = Graph::new();
        let psi = Jet {
            v: g_constant_col(&mut g, &xs.iter().map(|x| f64::sin(*x)).collect::<Vec<_>>()),
            d: vec![g_constant_col(
                &mut g,
                &xs.iter().map(|x| f64::cos(*x)).collect::<Vec<_>>(),
            )],
            dd: vec![g_constant_col(
                &mut g,
                &xs.iter().map(|x| -f64::sin(*x)).collect::<Vec<_>>(),
            )],
        };
        let vpot = g_constant_col(&mut g, &vec![0.0; n]);
        let e = g.constant(Tensor::from_vec([1, 1], vec![0.5]));
        let r = eigen_residual(&mut g, &psi, vpot, e);
        assert!(g.value(r).max_abs() < 1e-12);
    }
}
