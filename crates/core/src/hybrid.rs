//! The hybrid quantum-classical PINN: a [`QuantumLayer`] spliced between
//! the classical trunk and the output layer, trained end-to-end through
//! custom tape primitives whose VJPs come from exact dual-number
//! simulation.
//!
//! The hybrid model is demonstrated on the **variational (Rayleigh
//! quotient) eigenproblem**, which needs only first-order spatial
//! derivatives:
//!
//! `E[ψ] = ( ∫ ½(ψ′)² + Vψ² dx ) / ( ∫ ψ² dx )`
//!
//! so the quantum layer has to provide values and one JVP — both exactly
//! differentiable with the dual/hyper-dual machinery in `qpinn-qcircuit`.

use crate::trainer::PinnTask;
use qpinn_autodiff::{CustomOp, Var};
use qpinn_nn::{Dense, GraphCtx, ParamId, ParamSet};
use qpinn_problems::EigenProblem;
use qpinn_qcircuit::QuantumLayer;
use qpinn_tensor::Tensor;
use rand::rngs::StdRng;
use rayon::prelude::*;

/// Tape primitive: `E[m, nq] = QuantumLayer(A[m, nq]; θ[P])`.
struct QForwardOp {
    layer: QuantumLayer,
}

impl CustomOp for QForwardOp {
    fn name(&self) -> &str {
        "quantum-layer"
    }

    fn backward(
        &self,
        inputs: &[&Tensor],
        _output: &Tensor,
        out_grad: &Tensor,
    ) -> Vec<Option<Tensor>> {
        let a = inputs[0];
        let theta = inputs[1].data();
        let nq = self.layer.n_qubits;
        let m = a.shape().nrows();
        let rows: Vec<(Vec<f64>, Vec<f64>)> = (0..m)
            .into_par_iter()
            .map(|r| {
                let (_, ja, jt) = self.layer.jacobians_sample(a.row(r), theta);
                let gout = out_grad.row(r);
                let ga: Vec<f64> = (0..nq)
                    .map(|j| (0..nq).map(|k| gout[k] * ja[j][k]).sum())
                    .collect();
                let gth: Vec<f64> = (0..theta.len())
                    .map(|p| (0..nq).map(|k| gout[k] * jt[p][k]).sum())
                    .collect();
                (ga, gth)
            })
            .collect();
        let mut grad_a = Tensor::zeros([m, nq]);
        let mut grad_theta = vec![0.0; theta.len()];
        for (r, (ga, gth)) in rows.into_iter().enumerate() {
            grad_a.data_mut()[r * nq..(r + 1) * nq].copy_from_slice(&ga);
            for (acc, v) in grad_theta.iter_mut().zip(gth) {
                *acc += v;
            }
        }
        vec![
            Some(grad_a),
            Some(Tensor::from_vec([theta.len()], grad_theta)),
        ]
    }
}

/// Tape primitive: `Y[m, nq] = J_a(A, θ) · T` row-wise (the quantum layer's
/// input-JVP, used for first-order jets).
struct QJvpOp {
    layer: QuantumLayer,
}

impl CustomOp for QJvpOp {
    fn name(&self) -> &str {
        "quantum-layer-jvp"
    }

    fn backward(
        &self,
        inputs: &[&Tensor],
        _output: &Tensor,
        out_grad: &Tensor,
    ) -> Vec<Option<Tensor>> {
        let a = inputs[0];
        let t = inputs[1];
        let theta = inputs[2].data();
        let nq = self.layer.n_qubits;
        let m = a.shape().nrows();
        let rows: Vec<(Vec<f64>, Vec<f64>, Vec<f64>)> = (0..m)
            .into_par_iter()
            .map(|r| {
                self.layer
                    .jvp_grads_sample(a.row(r), t.row(r), theta, out_grad.row(r))
            })
            .collect();
        let mut grad_a = Tensor::zeros([m, nq]);
        let mut grad_t = Tensor::zeros([m, nq]);
        let mut grad_theta = vec![0.0; theta.len()];
        for (r, (ga, gt, gth)) in rows.into_iter().enumerate() {
            grad_a.data_mut()[r * nq..(r + 1) * nq].copy_from_slice(&ga);
            grad_t.data_mut()[r * nq..(r + 1) * nq].copy_from_slice(&gt);
            for (acc, v) in grad_theta.iter_mut().zip(gth) {
                *acc += v;
            }
        }
        vec![
            Some(grad_a),
            Some(grad_t),
            Some(Tensor::from_vec([theta.len()], grad_theta)),
        ]
    }
}

/// A first-order jet (value + one spatial derivative), the hybrid model's
/// working representation.
pub struct Jet1 {
    /// Value `[batch, w]`.
    pub v: Var,
    /// `∂/∂x` `[batch, w]`.
    pub dx: Var,
}

/// The hybrid network: `x → dense → tanh → dense(nq) → tanh → PQC →
/// dense(1)`.
pub struct HybridNet {
    l0: Dense,
    l1: Dense,
    qlayer: QuantumLayer,
    theta: ParamId,
    out: Dense,
}

impl HybridNet {
    /// Register all classical and quantum parameters.
    pub fn new(
        params: &mut ParamSet,
        rng: &mut StdRng,
        hidden: usize,
        qlayer: QuantumLayer,
        name: &str,
    ) -> Self {
        let nq = qlayer.n_qubits;
        let l0 = Dense::new(params, rng, 1, hidden, &format!("{name}.l0"));
        let l1 = Dense::new(params, rng, hidden, nq, &format!("{name}.l1"));
        let theta = params.add(
            format!("{name}.theta"),
            Tensor::from_slice(&qlayer.init_params(rng)),
        );
        let out = Dense::new(params, rng, nq, 1, &format!("{name}.out"));
        HybridNet {
            l0,
            l1,
            qlayer,
            theta,
            out,
        }
    }

    /// Handle of the quantum parameter vector.
    pub fn theta_id(&self) -> ParamId {
        self.theta
    }

    /// The quantum layer.
    pub fn quantum_layer(&self) -> &QuantumLayer {
        &self.qlayer
    }

    fn dense_jet1(layer: &Dense, ctx: &mut GraphCtx<'_>, x: &Jet1) -> Jet1 {
        let (w, b) = layer.param_ids();
        let wv = ctx.param(w);
        let bv = ctx.param(b);
        let z = ctx.g.matmul(x.v, wv);
        let v = ctx.g.add_bias(z, bv);
        let dx = ctx.g.matmul(x.dx, wv);
        Jet1 { v, dx }
    }

    fn tanh_jet1(ctx: &mut GraphCtx<'_>, x: &Jet1) -> Jet1 {
        let u = ctx.g.tanh(x.v);
        let sp = ctx.g.one_minus_square(u);
        let dx = ctx.g.mul(sp, x.dx);
        Jet1 { v: u, dx }
    }

    /// First-order jet forward pass: `x` is the `[batch, 1]` coordinate
    /// column; returns the scalar field jet `[batch, 1]`.
    pub fn forward_jet1(&self, ctx: &mut GraphCtx<'_>, x: Var) -> Jet1 {
        let ones = ctx.g.constant(Tensor::ones(ctx.g.value(x).shape().clone()));
        let mut h = Jet1 { v: x, dx: ones };
        h = Self::dense_jet1(&self.l0, ctx, &h);
        h = Self::tanh_jet1(ctx, &h);
        h = Self::dense_jet1(&self.l1, ctx, &h);
        h = Self::tanh_jet1(ctx, &h);

        // quantum layer as custom primitives
        let theta = ctx.param(self.theta);
        let a_val = ctx.g.value(h.v).clone();
        let t_val = ctx.g.value(h.dx).clone();
        let theta_val = ctx.g.value(theta).data().to_vec();
        let m = a_val.shape().nrows();
        let e_val = Tensor::from_vec(
            [m, self.qlayer.n_qubits],
            self.qlayer.forward_batch(a_val.data(), m, &theta_val),
        );
        let e = ctx.g.custom(
            Box::new(QForwardOp { layer: self.qlayer }),
            &[h.v, theta],
            e_val,
        );
        let jvp_rows: Vec<Vec<f64>> = (0..m)
            .into_par_iter()
            .map(|r| {
                self.qlayer
                    .jvp_sample(a_val.row(r), t_val.row(r), &theta_val)
                    .1
            })
            .collect();
        let mut jvp_flat = Vec::with_capacity(m * self.qlayer.n_qubits);
        for row in jvp_rows {
            jvp_flat.extend_from_slice(&row);
        }
        let e_dx = ctx.g.custom(
            Box::new(QJvpOp { layer: self.qlayer }),
            &[h.v, h.dx, theta],
            Tensor::from_vec([m, self.qlayer.n_qubits], jvp_flat),
        );
        let hq = Jet1 { v: e, dx: e_dx };
        Self::dense_jet1(&self.out, ctx, &hq)
    }

    /// Evaluate ψ at points (values only).
    pub fn predict(&self, params: &ParamSet, xs: &[f64]) -> Vec<f64> {
        let mut g = qpinn_autodiff::Graph::new();
        let mut ctx = GraphCtx::new(&mut g, params);
        let x = ctx.g.constant(Tensor::column(xs));
        let out = self.forward_jet1(&mut ctx, x);
        g.value(out.v).data().to_vec()
    }
}

/// The variational (Rayleigh quotient) eigenproblem task for a
/// [`HybridNet`] — or, with `hybrid = None`-like classical control, see
/// [`crate::task::EigenTask`] for the residual formulation.
pub struct HybridEigenTask {
    problem: EigenProblem,
    net: HybridNet,
    xs: Vec<f64>,
    potential_col: Tensor,
    w_boundary: f64,
    reference_energy: f64,
}

impl HybridEigenTask {
    /// Assemble the task (ground state only).
    pub fn new(
        problem: EigenProblem,
        net: HybridNet,
        n_collocation: usize,
        reference_nx: usize,
    ) -> Self {
        let l = problem.x1 - problem.x0;
        let xs: Vec<f64> = (0..n_collocation)
            .map(|i| problem.x0 + l * (i as f64 + 0.5) / n_collocation as f64)
            .collect();
        let potential_col = Tensor::column(
            &xs.iter()
                .map(|&x| problem.potential.eval(x))
                .collect::<Vec<_>>(),
        );
        let reference_energy = problem.reference(reference_nx)[0].energy;
        HybridEigenTask {
            problem,
            net,
            xs,
            potential_col,
            w_boundary: 10.0,
            reference_energy,
        }
    }

    /// The current Rayleigh-quotient energy estimate.
    pub fn energy(&self, params: &ParamSet) -> f64 {
        let mut g = qpinn_autodiff::Graph::new();
        let mut ctx = GraphCtx::new(&mut g, params);
        let e = self.build_rayleigh(&mut ctx);
        g.value(e).item()
    }

    /// Reference (FD) ground-state energy.
    pub fn reference_energy(&self) -> f64 {
        self.reference_energy
    }

    /// The network.
    pub fn net(&self) -> &HybridNet {
        &self.net
    }

    fn build_rayleigh(&self, ctx: &mut GraphCtx<'_>) -> Var {
        let x = ctx.g.constant(Tensor::column(&self.xs));
        let psi = self.net.forward_jet1(ctx, x);
        let vpot = ctx.g.constant(self.potential_col.clone());
        // numerator: ⟨½(ψ′)² + Vψ²⟩
        let dpsi2 = ctx.g.square(psi.dx);
        let half = ctx.g.scale(dpsi2, 0.5);
        let psi2 = ctx.g.square(psi.v);
        let vpsi2 = ctx.g.mul(vpot, psi2);
        let integrand = ctx.g.add(half, vpsi2);
        let num = ctx.g.mean(integrand);
        // denominator: ⟨ψ²⟩ (+ tiny floor to avoid 0/0 at init)
        let den = ctx.g.mean(psi2);
        let den = ctx.g.add_scalar(den, 1e-9);
        ctx.g.div(num, den)
    }
}

impl PinnTask for HybridEigenTask {
    fn build_loss(&mut self, ctx: &mut GraphCtx<'_>) -> Var {
        let e = self.build_rayleigh(ctx);
        // boundary decay
        let bx = ctx
            .g
            .constant(Tensor::column(&[self.problem.x0, self.problem.x1]));
        let bpsi = {
            let out = self.net.forward_jet1(ctx, bx);
            out.v
        };
        let lbnd = ctx.g.mse(bpsi);
        let lb = ctx.g.scale(lbnd, self.w_boundary);
        ctx.g.add(e, lb)
    }

    fn eval_error(&self, params: &ParamSet) -> f64 {
        (self.energy(params) - self.reference_energy).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpinn_qcircuit::{Ansatz, InputScaling};
    use rand::SeedableRng;

    fn make_net(params: &mut ParamSet, rng: &mut StdRng) -> HybridNet {
        let q = QuantumLayer {
            n_qubits: 3,
            layers: 2,
            ansatz: Ansatz::BasicEntangling,
            scaling: InputScaling::Acos,
            reupload: false,
        };
        HybridNet::new(params, rng, 12, q, "hyb")
    }

    #[test]
    fn hybrid_jet_derivative_matches_finite_differences() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let net = make_net(&mut params, &mut rng);
        let x0 = 0.37;
        let h = 1e-5;
        let f = |x: f64| net.predict(&params, &[x])[0];
        let mut g = qpinn_autodiff::Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let x = ctx.g.constant(Tensor::column(&[x0]));
        let out = net.forward_jet1(&mut ctx, x);
        let dx = g.value(out.dx).item();
        let fd = (f(x0 + h) - f(x0 - h)) / (2.0 * h);
        assert!((dx - fd).abs() < 1e-6, "dψ/dx {dx} vs {fd}");
    }

    #[test]
    fn hybrid_loss_gradients_match_finite_differences() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let net = make_net(&mut params, &mut rng);
        let problem = EigenProblem::harmonic(1.0);
        let mut task = HybridEigenTask::new(problem, net, 16, 201);

        // analytic gradients
        let mut g = qpinn_autodiff::Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let loss = task.build_loss(&mut ctx);
        let mut grads = ctx.g.backward(loss);
        let analytic = ctx.collect_grads(&mut grads);

        // finite differences over a few entries of every parameter tensor
        let h = 1e-6;
        let eval = |p: &ParamSet, task: &mut HybridEigenTask| -> f64 {
            let mut g = qpinn_autodiff::Graph::new();
            let mut ctx = GraphCtx::new(&mut g, p);
            let loss = task.build_loss(&mut ctx);
            g.value(loss).item()
        };
        for k in 0..params.len() {
            let n = params.tensors()[k].len();
            for e in [0usize, n / 2, n - 1] {
                let mut plus = params.clone();
                plus.tensors_mut()[k].data_mut()[e] += h;
                let mut minus = params.clone();
                minus.tensors_mut()[k].data_mut()[e] -= h;
                let fd = (eval(&plus, &mut task) - eval(&minus, &mut task)) / (2.0 * h);
                let a = analytic[k].data()[e];
                assert!(
                    (a - fd).abs() < 2e-4 * fd.abs().max(1.0),
                    "param {k} elem {e}: analytic {a} vs fd {fd}"
                );
            }
        }
    }

    #[test]
    fn rayleigh_energy_is_above_ground_state() {
        // The Rayleigh quotient upper-bounds the true ground energy for any
        // trial state.
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(2);
        let net = make_net(&mut params, &mut rng);
        let problem = EigenProblem::harmonic(1.0);
        let task = HybridEigenTask::new(problem, net, 64, 201);
        let e = task.energy(&params);
        assert!(e > 0.45, "Rayleigh quotient {e} below ground state");
    }
}
