//! Causal (curriculum) time weighting for PINN training
//! (Wang, Sankaran & Perdikaris 2024).
//!
//! Residual points are weighted by `w(t) = exp(−ε Σ_{t′<t} L(t′))` so the
//! optimizer must fit early-time dynamics before later times contribute —
//! enforcing the causal structure of the evolution problem.

use qpinn_sampling::TimeBins;

/// Stateful causal weighting over fixed collocation times.
#[derive(Clone, Debug)]
pub struct CausalWeights {
    bins: TimeBins,
    epsilon: f64,
    times: Vec<f64>,
    bin_weights: Vec<f64>,
}

impl CausalWeights {
    /// Initialize with unit weights over `m` bins spanning `[t0, t1]` for
    /// the given (fixed) collocation times.
    pub fn new(t0: f64, t1: f64, m: usize, epsilon: f64, times: &[f64]) -> Self {
        let bins = TimeBins::new(t0, t1, m);
        CausalWeights {
            bins,
            epsilon,
            times: times.to_vec(),
            bin_weights: vec![1.0; m],
        }
    }

    /// Current per-point weights aligned with the collocation times.
    pub fn point_weights(&self) -> Vec<f64> {
        self.bins.point_weights(&self.times, &self.bin_weights)
    }

    /// Current per-bin weights.
    pub fn bin_weights(&self) -> &[f64] {
        &self.bin_weights
    }

    /// Update weights from the latest *unweighted* squared residuals at
    /// the collocation points.
    pub fn update(&mut self, squared_residuals: &[f64]) {
        assert_eq!(squared_residuals.len(), self.times.len(), "residual arity");
        let m = self.bins.len();
        let mut sums = vec![0.0; m];
        let mut counts = vec![0usize; m];
        for (&t, &r2) in self.times.iter().zip(squared_residuals) {
            let b = self.bins.bin_of(t);
            sums[b] += r2;
            counts[b] += 1;
        }
        let bin_losses: Vec<f64> = sums
            .iter()
            .zip(&counts)
            .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
            .collect();
        self.bin_weights = self.bins.causal_weights(&bin_losses, self.epsilon);
    }

    /// Smallest current bin weight (diagnostic: 1 means "fully open").
    pub fn min_weight(&self) -> f64 {
        self.bin_weights.iter().copied().fold(1.0, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_fully_open() {
        let times = [0.05, 0.5, 0.95];
        let cw = CausalWeights::new(0.0, 1.0, 3, 1.0, &times);
        assert_eq!(cw.point_weights(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn high_early_residuals_close_late_bins() {
        let times = [0.1, 0.5, 0.9];
        let mut cw = CausalWeights::new(0.0, 1.0, 3, 2.0, &times);
        cw.update(&[4.0, 0.1, 0.1]);
        let w = cw.point_weights();
        assert_eq!(w[0], 1.0, "first bin always open");
        assert!(w[1] < 1e-3, "second bin gated by first-bin loss");
        assert!(w[2] <= w[1]);
    }

    #[test]
    fn converged_early_bins_reopen_later_ones() {
        let times = [0.1, 0.5, 0.9];
        let mut cw = CausalWeights::new(0.0, 1.0, 3, 2.0, &times);
        cw.update(&[4.0, 1.0, 1.0]);
        assert!(cw.min_weight() < 1e-3);
        cw.update(&[1e-8, 1e-8, 1e-8]);
        assert!(cw.min_weight() > 0.999, "weights reopen on convergence");
    }

    #[test]
    fn empty_bins_are_neutral() {
        // no collocation point in the middle bin
        let times = [0.1, 0.9];
        let mut cw = CausalWeights::new(0.0, 1.0, 3, 1.0, &times);
        cw.update(&[0.5, 0.5]);
        let bw = cw.bin_weights();
        // middle bin had no data → contributes 0 to the cumulative sum
        assert!((bw[2] - (-0.5f64).exp()).abs() < 1e-12);
    }
}
