//! `qpinn-run-v1`: durable experiment records for training runs.
//!
//! Every recorded run owns one directory under a store root (default
//! `target/runs`):
//!
//! ```text
//! target/runs/<run_id>/
//!   manifest.json   # atomic: config hash, seed, widths, env, outcome
//!   series.jsonl    # append-only: per-interval losses + gradient stats
//! ```
//!
//! The **manifest** is written twice, both times via the same atomic
//! tmp+fsync+rename idiom the checkpoint store uses: once at run start
//! with `outcome: "incomplete"`, and once at the end with the terminal
//! outcome (`converged`, `diverged`, or `error`) plus final metrics. A
//! crash — or an injected `fs.enospc`/torn-write failure — between the
//! two leaves the *intact* start-of-run manifest behind, so the run
//! lists as `incomplete` rather than vanishing or corrupting.
//!
//! The **series** is an append-only JSONL stream: one `"epoch"` line per
//! `log_every` interval carrying the total loss, per-component losses
//! (mirrored from the `train.loss.*` gauges), per-layer gradient norm
//! *and variance* — the barren-plateau signal a histogram cannot
//! recover, because it needs norm and variance from the *same* interval
//! — plus `"checkpoint"` and `"diverged"` event lines.
//!
//! Run ids come from the same process-global splitmix64 stream as
//! request trace ids ([`qpinn_telemetry::trace::fresh_id`]), so a run
//! launched by a traced `POST /v1/train` request carries both its own id
//! and the submitting request's trace id.
//!
//! Consumers: `qpinn-obs runs {list,show,diff,regress}` and the shared
//! HTTP routes `GET /v1/runs` and `GET /v1/runs/<id>`.

use crate::report::Json;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Schema tag written into every manifest.
pub const RUN_SCHEMA: &str = "qpinn-run-v1";

/// The default store root, shared by the trainer (writer), the obs CLI,
/// and the HTTP routes: `target/runs`.
pub fn default_dir() -> PathBuf {
    Path::new("target").join("runs")
}

/// Declarative run-recording request, carried by
/// [`crate::trainer::TrainConfig::run`]. The trainer opens the actual
/// [`RunRecorder`] when the segment starts.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Store root (each run creates `<dir>/<run_id>/`).
    pub dir: PathBuf,
    /// Task label shown by `runs list` (e.g. `t1/harmonic`).
    pub task: String,
    /// Seed the run trains under.
    pub seed: u64,
    /// Task/architecture configuration, hashed into `config_hash`.
    pub config: Json,
    /// Trace id of the submitting request (empty when the run was not
    /// launched through a traced HTTP request).
    pub trace: String,
    /// Pre-assigned run id; `None` mints a fresh one at begin. The serve
    /// plane pre-mints so a job can report its run id while training.
    pub run_id: Option<String>,
}

impl RunConfig {
    /// Record under `dir` with a task label and seed.
    pub fn new(dir: impl Into<PathBuf>, task: impl Into<String>, seed: u64) -> Self {
        RunConfig {
            dir: dir.into(),
            task: task.into(),
            seed,
            config: Json::Obj(Vec::new()),
            trace: String::new(),
            run_id: None,
        }
    }

    /// Attach the task/architecture configuration document.
    pub fn config(mut self, config: Json) -> Self {
        self.config = config;
        self
    }

    /// Stamp the submitting request's trace id.
    pub fn trace(mut self, trace: impl Into<String>) -> Self {
        self.trace = trace.into();
        self
    }

    /// Pin the run id instead of minting one at begin.
    pub fn run_id(mut self, id: impl Into<String>) -> Self {
        self.run_id = Some(id.into());
        self
    }
}

/// Terminal (or current) state of a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// Ran its budget with a finite final loss.
    Converged,
    /// Stopped early by the divergence guard.
    Diverged,
    /// Finished with a non-finite final loss.
    Error,
    /// Started but never finalized (crash, kill, or torn finalize).
    Incomplete,
}

impl RunOutcome {
    /// The manifest string for this outcome.
    pub fn as_str(self) -> &'static str {
        match self {
            RunOutcome::Converged => "converged",
            RunOutcome::Diverged => "diverged",
            RunOutcome::Error => "error",
            RunOutcome::Incomplete => "incomplete",
        }
    }

    /// Inverse of [`RunOutcome::as_str`].
    pub fn parse(s: &str) -> Option<RunOutcome> {
        match s {
            "converged" => Some(RunOutcome::Converged),
            "diverged" => Some(RunOutcome::Diverged),
            "error" => Some(RunOutcome::Error),
            "incomplete" => Some(RunOutcome::Incomplete),
            _ => None,
        }
    }
}

/// The `manifest.json` document (see [`RUN_SCHEMA`]).
#[derive(Clone, Debug)]
pub struct Manifest {
    /// Run id (16 hex digits from the trace-id stream).
    pub run_id: String,
    /// Task label.
    pub task: String,
    /// Training seed.
    pub seed: u64,
    /// Task/architecture/trainer configuration document.
    pub config: Json,
    /// FNV-1a-64 of the canonical `config` serialization, hex.
    pub config_hash: String,
    /// Work-stealing pool width the run executed under.
    pub threads: usize,
    /// Resolved `QPINN_SIMD` dispatch width (1, 4, or 8).
    pub simd: usize,
    /// Captured `QPINN_*` environment, sorted by name.
    pub env: Vec<(String, String)>,
    /// Submitting request's trace id ("" when none).
    pub trace: String,
    /// Wall-clock run start (unix milliseconds).
    pub start_unix_ms: u64,
    /// Wall-clock run end; `None` until finalized.
    pub end_unix_ms: Option<u64>,
    /// Current outcome.
    pub outcome: RunOutcome,
    /// Epoch budget the run was configured with.
    pub epochs_planned: usize,
    /// Epochs actually run; `None` until finalized.
    pub epochs_run: Option<usize>,
    /// Final loss; `None` until finalized.
    pub final_loss: Option<f64>,
    /// Final evaluation error; `None` until finalized.
    pub final_error: Option<f64>,
}

impl Manifest {
    /// Serialize to the frozen `qpinn-run-v1` manifest document.
    pub fn to_json(&self) -> Json {
        let env = self
            .env
            .iter()
            .map(|(k, v)| (k.clone(), Json::Str(v.clone())))
            .collect();
        let opt_num = |v: Option<f64>| v.map(Json::Num).unwrap_or(Json::Null);
        Json::obj(vec![
            ("schema", Json::Str(RUN_SCHEMA.to_string())),
            ("run_id", Json::Str(self.run_id.clone())),
            ("task", Json::Str(self.task.clone())),
            ("seed", Json::Num(self.seed as f64)),
            ("config", self.config.clone()),
            ("config_hash", Json::Str(self.config_hash.clone())),
            ("threads", Json::Num(self.threads as f64)),
            ("simd", Json::Num(self.simd as f64)),
            ("env", Json::Obj(env)),
            ("trace", Json::Str(self.trace.clone())),
            ("start_unix_ms", Json::Num(self.start_unix_ms as f64)),
            (
                "end_unix_ms",
                opt_num(self.end_unix_ms.map(|v| v as f64)),
            ),
            ("outcome", Json::Str(self.outcome.as_str().to_string())),
            ("epochs_planned", Json::Num(self.epochs_planned as f64)),
            (
                "epochs_run",
                opt_num(self.epochs_run.map(|v| v as f64)),
            ),
            ("final_loss", opt_num(self.final_loss)),
            ("final_error", opt_num(self.final_error)),
        ])
    }

    /// Parse a manifest document back; rejects unknown schema tags.
    pub fn from_json(doc: &Json) -> Result<Manifest, String> {
        let schema = doc
            .get("schema")
            .and_then(|v| v.as_str())
            .ok_or("manifest missing `schema`")?;
        if schema != RUN_SCHEMA {
            return Err(format!("unknown run schema `{schema}`"));
        }
        let str_field = |key: &str| -> Result<String, String> {
            doc.get(key)
                .and_then(|v| v.as_str())
                .map(str::to_string)
                .ok_or(format!("manifest missing string `{key}`"))
        };
        let num_field = |key: &str| -> Result<f64, String> {
            doc.get(key)
                .and_then(|v| v.as_num())
                .ok_or(format!("manifest missing number `{key}`"))
        };
        let opt_num = |key: &str| doc.get(key).and_then(|v| v.as_num());
        let env = match doc.get("env") {
            Some(Json::Obj(pairs)) => pairs
                .iter()
                .filter_map(|(k, v)| v.as_str().map(|s| (k.clone(), s.to_string())))
                .collect(),
            _ => Vec::new(),
        };
        let outcome_s = str_field("outcome")?;
        Ok(Manifest {
            run_id: str_field("run_id")?,
            task: str_field("task")?,
            seed: num_field("seed")? as u64,
            config: doc.get("config").cloned().unwrap_or(Json::Null),
            config_hash: str_field("config_hash")?,
            threads: num_field("threads")? as usize,
            simd: num_field("simd")? as usize,
            env,
            trace: str_field("trace").unwrap_or_default(),
            start_unix_ms: num_field("start_unix_ms")? as u64,
            end_unix_ms: opt_num("end_unix_ms").map(|v| v as u64),
            outcome: RunOutcome::parse(&outcome_s)
                .ok_or(format!("unknown outcome `{outcome_s}`"))?,
            epochs_planned: num_field("epochs_planned")? as usize,
            epochs_run: opt_num("epochs_run").map(|v| v as usize),
            final_loss: opt_num("final_loss"),
            final_error: opt_num("final_error"),
        })
    }
}

/// Per-layer gradient statistics for one log interval.
#[derive(Clone, Debug)]
pub struct LayerGrad {
    /// Parameter-tensor (layer) name.
    pub name: String,
    /// L2 norm of the layer's gradient (pre-clip).
    pub norm: f64,
    /// Population variance of the layer's gradient entries — the
    /// barren-plateau signal: variance collapsing toward zero across
    /// depth is the diagnostic the mitigation literature tracks.
    pub var: f64,
}

/// One `"epoch"` line of the series.
#[derive(Clone, Debug, Default)]
pub struct EpochPoint {
    /// Epoch index.
    pub epoch: usize,
    /// Total loss.
    pub loss: f64,
    /// Global gradient norm (pre-clip).
    pub grad_norm: f64,
    /// Learning rate.
    pub lr: f64,
    /// Measured milliseconds per epoch over the last interval (0 until
    /// a full interval has elapsed).
    pub epoch_ms: f64,
    /// Named loss components (`train.loss.*` gauges), document order.
    pub components: Vec<(String, f64)>,
    /// Per-layer gradient norm + variance.
    pub layers: Vec<LayerGrad>,
}

impl EpochPoint {
    /// Serialize as one frozen series line.
    pub fn to_json(&self) -> Json {
        let components = self
            .components
            .iter()
            .map(|(k, v)| (k.clone(), Json::Num(*v)))
            .collect();
        let grad = self
            .layers
            .iter()
            .map(|l| {
                (
                    l.name.clone(),
                    Json::obj(vec![("norm", Json::Num(l.norm)), ("var", Json::Num(l.var))]),
                )
            })
            .collect();
        Json::obj(vec![
            ("kind", Json::Str("epoch".to_string())),
            ("epoch", Json::Num(self.epoch as f64)),
            ("loss", Json::Num(self.loss)),
            ("grad_norm", Json::Num(self.grad_norm)),
            ("lr", Json::Num(self.lr)),
            ("epoch_ms", Json::Num(self.epoch_ms)),
            ("components", Json::Obj(components)),
            ("grad", Json::Obj(grad)),
        ])
    }
}

/// FNV-1a 64-bit over a string — the config hash. Stable, zero-dep, and
/// good enough to answer "same configuration?" across runs.
pub fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn now_unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

/// Captured `QPINN_*` environment, sorted by name (manifest `env`).
pub fn captured_env() -> Vec<(String, String)> {
    let mut vars: Vec<(String, String)> = std::env::vars()
        .filter(|(k, _)| k.starts_with("QPINN_"))
        .collect();
    vars.sort();
    vars
}

/// Atomically publish `doc` as `<run_dir>/manifest.json` via the
/// tmp+fsync+rename idiom. Failpoints: `fs.enospc` (nothing lands) and
/// `runs.manifest_torn` (half the payload reaches the tmp file, which is
/// never renamed — the previously published manifest stays intact).
fn write_manifest(run_dir: &Path, doc: &Json) -> io::Result<()> {
    let final_path = run_dir.join("manifest.json");
    let tmp_path = run_dir.join("manifest.json.tmp");
    qpinn_testkit::fail_io("fs.enospc")?;
    let bytes = doc.to_string();
    {
        let mut f = fs::File::create(&tmp_path)?;
        if qpinn_testkit::should_fail("runs.manifest_torn") {
            f.write_all(&bytes.as_bytes()[..bytes.len() / 2])?;
            let _ = f.sync_all();
            return Err(qpinn_testkit::injected_io_error("runs.manifest_torn"));
        }
        f.write_all(bytes.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp_path, &final_path)?;
    if let Ok(d) = fs::File::open(run_dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

/// Writes one run's record as training progresses. Opened by the trainer
/// from a [`RunConfig`]; I/O failures after a successful begin degrade
/// to warnings (a full disk must not kill training), leaving whatever
/// was durably published behind.
pub struct RunRecorder {
    run_dir: PathBuf,
    manifest: Manifest,
    series: Option<fs::File>,
    io_failed: bool,
}

impl RunRecorder {
    /// Create `<cfg.dir>/<run_id>/`, publish the start-of-run manifest
    /// (`outcome: "incomplete"`), and open the series stream.
    pub fn begin(cfg: &RunConfig, epochs_planned: usize, train: Json) -> io::Result<RunRecorder> {
        let run_id = cfg
            .run_id
            .clone()
            .unwrap_or_else(qpinn_telemetry::trace::fresh_id);
        let run_dir = cfg.dir.join(&run_id);
        fs::create_dir_all(&run_dir)?;
        // The hashed configuration couples the caller's task/arch block
        // with the trainer hyperparameters, so "identical config" means
        // identical end to end.
        let config = Json::obj(vec![("task", cfg.config.clone()), ("train", train)]);
        let config_hash = format!("{:016x}", fnv1a64(&config.to_string()));
        let manifest = Manifest {
            run_id: run_id.clone(),
            task: cfg.task.clone(),
            seed: cfg.seed,
            config,
            config_hash,
            threads: rayon::current_num_threads(),
            simd: qpinn_tensor::simd::width(),
            env: captured_env(),
            trace: cfg.trace.clone(),
            start_unix_ms: now_unix_ms(),
            end_unix_ms: None,
            outcome: RunOutcome::Incomplete,
            epochs_planned,
            epochs_run: None,
            final_loss: None,
            final_error: None,
        };
        write_manifest(&run_dir, &manifest.to_json())?;
        let series = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(run_dir.join("series.jsonl"))?;
        register_session_run(&run_id);
        Ok(RunRecorder {
            run_dir,
            manifest,
            series: Some(series),
            io_failed: false,
        })
    }

    /// This run's id.
    pub fn run_id(&self) -> &str {
        &self.manifest.run_id
    }

    /// Directory holding this run's record.
    pub fn dir(&self) -> &Path {
        &self.run_dir
    }

    fn append_line(&mut self, doc: &Json) {
        let Some(f) = self.series.as_mut() else { return };
        let mut line = doc.to_string();
        line.push('\n');
        if let Err(e) = qpinn_testkit::fail_io("fs.enospc").and_then(|_| f.write_all(line.as_bytes()))
        {
            if !self.io_failed {
                self.io_failed = true;
                qpinn_telemetry::warn(
                    "run_series_write_failed",
                    format!("run {} series append failed: {e}", self.manifest.run_id),
                );
            }
        }
    }

    /// Append one `"epoch"` series line.
    pub fn epoch(&mut self, point: &EpochPoint) {
        self.append_line(&point.to_json());
    }

    /// Append a `"checkpoint"` event line.
    pub fn checkpoint(&mut self, epoch: usize, path: &Path) {
        self.append_line(&Json::obj(vec![
            ("kind", Json::Str("checkpoint".to_string())),
            ("epoch", Json::Num(epoch as f64)),
            ("path", Json::Str(path.display().to_string())),
        ]));
    }

    /// Append a `"diverged"` event line.
    pub fn diverged(&mut self, epoch: usize, loss: f64, min_loss: f64) {
        self.append_line(&Json::obj(vec![
            ("kind", Json::Str("diverged".to_string())),
            ("epoch", Json::Num(epoch as f64)),
            ("loss", Json::Num(loss)),
            ("min_loss", Json::Num(min_loss)),
        ]));
    }

    /// Publish the terminal manifest. On failure the start-of-run
    /// manifest (outcome `incomplete`) stays behind intact.
    pub fn finalize(
        &mut self,
        outcome: RunOutcome,
        epochs_run: usize,
        final_loss: f64,
        final_error: f64,
    ) -> io::Result<()> {
        if let Some(f) = self.series.take() {
            let _ = f.sync_all();
        }
        self.manifest.end_unix_ms = Some(now_unix_ms());
        self.manifest.outcome = outcome;
        self.manifest.epochs_run = Some(epochs_run);
        self.manifest.final_loss = Some(final_loss);
        self.manifest.final_error = Some(final_error);
        write_manifest(&self.run_dir, &self.manifest.to_json())
    }
}

/// Run ids recorded by this process, in begin order — lets the bench
/// harness stamp experiment records with the runs that produced them.
pub fn session_run_ids() -> Vec<String> {
    session_runs()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clone()
}

fn register_session_run(id: &str) {
    session_runs()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push(id.to_string());
}

fn session_runs() -> &'static std::sync::Mutex<Vec<String>> {
    static RUNS: std::sync::OnceLock<std::sync::Mutex<Vec<String>>> = std::sync::OnceLock::new();
    RUNS.get_or_init(|| std::sync::Mutex::new(Vec::new()))
}

/// One row of `runs list` / `GET /v1/runs`.
#[derive(Clone, Debug)]
pub struct RunSummary {
    /// Run id (directory name).
    pub run_id: String,
    /// Task label ("?" when the manifest is missing or unreadable).
    pub task: String,
    /// Seed, when known.
    pub seed: Option<u64>,
    /// Final loss, when finalized.
    pub final_loss: Option<f64>,
    /// Outcome string; unreadable manifests report `incomplete`.
    pub outcome: String,
    /// Run start, unix ms (0 when unknown).
    pub start_unix_ms: u64,
}

/// List every run under `dir`, oldest first (by start time, then id).
/// A directory whose manifest is missing or unparseable still lists —
/// as `incomplete` — because a torn start is itself a signal.
pub fn list_runs(dir: &Path) -> io::Result<Vec<RunSummary>> {
    let mut out = Vec::new();
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(e),
    };
    for entry in entries.flatten() {
        if !entry.path().is_dir() {
            continue;
        }
        let run_id = entry.file_name().to_string_lossy().to_string();
        let summary = match read_manifest(&entry.path()) {
            Ok(m) => RunSummary {
                run_id: m.run_id,
                task: m.task,
                seed: Some(m.seed),
                final_loss: m.final_loss,
                outcome: m.outcome.as_str().to_string(),
                start_unix_ms: m.start_unix_ms,
            },
            Err(_) => RunSummary {
                run_id,
                task: "?".to_string(),
                seed: None,
                final_loss: None,
                outcome: RunOutcome::Incomplete.as_str().to_string(),
                start_unix_ms: 0,
            },
        };
        out.push(summary);
    }
    out.sort_by(|a, b| {
        a.start_unix_ms
            .cmp(&b.start_unix_ms)
            .then_with(|| a.run_id.cmp(&b.run_id))
    });
    Ok(out)
}

fn read_manifest(run_dir: &Path) -> Result<Manifest, String> {
    let text = fs::read_to_string(run_dir.join("manifest.json")).map_err(|e| e.to_string())?;
    Manifest::from_json(&Json::parse(&text)?)
}

/// A fully loaded run record.
#[derive(Clone, Debug)]
pub struct RunRecord {
    /// The parsed manifest.
    pub manifest: Manifest,
    /// Parsed series lines, file order. A torn trailing line (crash mid
    /// append) is dropped rather than failing the load.
    pub series: Vec<Json>,
}

impl RunRecord {
    /// `(epoch, value)` pairs of a top-level numeric field over the
    /// `"epoch"` series lines (e.g. `"loss"`, `"grad_norm"`).
    pub fn series_of(&self, field: &str) -> Vec<(usize, f64)> {
        self.series
            .iter()
            .filter(|l| l.get("kind").and_then(|k| k.as_str()) == Some("epoch"))
            .filter_map(|l| {
                let e = l.get("epoch")?.as_num()? as usize;
                let v = l.get(field)?.as_num()?;
                Some((e, v))
            })
            .collect()
    }
}

/// Load one run's manifest + series from `dir/<run_id>/`.
pub fn load_run(dir: &Path, run_id: &str) -> io::Result<RunRecord> {
    let run_dir = dir.join(run_id);
    let manifest = read_manifest(&run_dir)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("run {run_id}: {e}")))?;
    let mut series = Vec::new();
    match fs::read_to_string(run_dir.join("series.jsonl")) {
        Ok(text) => {
            for line in text.lines() {
                if line.trim().is_empty() {
                    continue;
                }
                match Json::parse(line) {
                    Ok(doc) => series.push(doc),
                    // A torn trailing append is expected debris after a
                    // crash; anything else parseable was already kept.
                    Err(_) => break,
                }
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    Ok(RunRecord { manifest, series })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("qpinn-runs-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn demo_cfg(dir: &Path) -> RunConfig {
        RunConfig::new(dir, "demo", 7).config(Json::obj(vec![("width", Json::Num(8.0))]))
    }

    #[test]
    fn lifecycle_begin_append_finalize_roundtrips() {
        let dir = tmp_store("lifecycle");
        let mut rec = RunRecorder::begin(&demo_cfg(&dir), 100, Json::obj(vec![])).unwrap();
        let id = rec.run_id().to_string();
        assert_eq!(id.len(), 16);
        // Start-of-run manifest is already durable and incomplete.
        let listed = list_runs(&dir).unwrap();
        assert_eq!(listed.len(), 1);
        assert_eq!(listed[0].outcome, "incomplete");
        rec.epoch(&EpochPoint {
            epoch: 0,
            loss: 1.5,
            grad_norm: 2.0,
            lr: 1e-3,
            epoch_ms: 0.0,
            components: vec![("ic".into(), 0.5)],
            layers: vec![LayerGrad {
                name: "w".into(),
                norm: 2.0,
                var: 0.25,
            }],
        });
        rec.checkpoint(50, Path::new("ckpt/epoch-50.qps"));
        rec.finalize(RunOutcome::Converged, 100, 1e-3, 1e-2).unwrap();
        let loaded = load_run(&dir, &id).unwrap();
        assert_eq!(loaded.manifest.outcome, RunOutcome::Converged);
        assert_eq!(loaded.manifest.epochs_run, Some(100));
        assert_eq!(loaded.manifest.final_loss, Some(1e-3));
        assert_eq!(loaded.series.len(), 2);
        assert_eq!(loaded.series_of("loss"), vec![(0, 1.5)]);
        assert!(session_run_ids().contains(&id));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn identical_configs_hash_identically_and_lr_changes_hash() {
        let dir = tmp_store("hash");
        let cfg = demo_cfg(&dir);
        let train = Json::obj(vec![("lr0", Json::Num(1e-3))]);
        let a = RunRecorder::begin(&cfg, 10, train.clone()).unwrap();
        let b = RunRecorder::begin(&cfg, 10, train).unwrap();
        let c =
            RunRecorder::begin(&cfg, 10, Json::obj(vec![("lr0", Json::Num(1e-1))])).unwrap();
        assert_eq!(a.manifest.config_hash, b.manifest.config_hash);
        assert_ne!(a.manifest.config_hash, c.manifest.config_hash);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_finalize_leaves_intact_incomplete_manifest() {
        let dir = tmp_store("torn");
        let mut rec = RunRecorder::begin(&demo_cfg(&dir), 10, Json::obj(vec![])).unwrap();
        let id = rec.run_id().to_string();
        {
            let _fp = qpinn_testkit::arm("runs.manifest_torn", qpinn_testkit::Trigger::Always);
            assert!(rec.finalize(RunOutcome::Converged, 10, 0.1, 0.1).is_err());
        }
        // The published manifest is still valid JSON and still incomplete.
        let loaded = load_run(&dir, &id).unwrap();
        assert_eq!(loaded.manifest.outcome, RunOutcome::Incomplete);
        let listed = list_runs(&dir).unwrap();
        assert_eq!(listed[0].outcome, "incomplete");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn fnv1a64_is_the_reference_function() {
        // Reference vectors for the 64-bit FNV-1a parameters.
        assert_eq!(fnv1a64(""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64("a"), 0xaf63_dc4c_8601_ec8c);
    }
}
