//! Observability glue between the training stack and `qpinn-telemetry`:
//! bridges the work-stealing pool's activity counters into the metrics
//! registry and the event stream.
//!
//! The pool itself (vendored `rayon`) stays telemetry-free — it exposes
//! raw counters through `rayon::pool_stats()`, sampled at drain
//! boundaries — and this module translates a sample into registry gauges
//! (so the final metrics snapshot carries pool balance) plus one
//! `pool_stats` mark event per call (so a JSONL stream shows how balance
//! evolved over a run).
//!
//! The tensor crate's buffer pool gets the same treatment:
//! [`emit_buffer_pool_stats`] mirrors its reuse/allocation counters, so a
//! run's telemetry shows how many allocations the fused-kernel buffer
//! recycling actually saved.

use qpinn_telemetry as telemetry;

/// Mirror the tensor buffer-pool counters ([`qpinn_tensor::pool::stats`])
/// into registry gauges (`tensor_pool.{reused,allocated,recycled}`) and —
/// when a sink is installed — emit a `tensor_pool_stats` event tagged with
/// `context`. `reused` counts output allocations the pool avoided.
pub fn emit_buffer_pool_stats(context: &str) {
    let s = qpinn_tensor::pool::stats();
    telemetry::gauge("tensor_pool.reused").set(s.reused as f64);
    telemetry::gauge("tensor_pool.allocated").set(s.allocated as f64);
    telemetry::gauge("tensor_pool.recycled").set(s.recycled as f64);
    telemetry::mark("tensor_pool_stats", |e| {
        e.field("context", context)
            .field("reused", s.reused)
            .field("allocated", s.allocated)
            .field("recycled", s.recycled)
            .field("simd_width", qpinn_tensor::simd::width())
    });
}

/// Sample the pool counters, mirror them into registry gauges
/// (`pool.worker<i>.{tasks,steals,idle_waits}`, `pool.launcher.*`), and —
/// when a sink is installed — emit a `pool_stats` event tagged with
/// `context` (e.g. `"train_segment"`, `"kernels"`).
pub fn emit_pool_stats(context: &str) {
    let stats = rayon::pool_stats();
    for (i, w) in stats.workers.iter().enumerate() {
        telemetry::gauge(&format!("pool.worker{i}.tasks")).set(w.tasks as f64);
        telemetry::gauge(&format!("pool.worker{i}.steals")).set(w.steals as f64);
        telemetry::gauge(&format!("pool.worker{i}.idle_waits")).set(w.idle_waits as f64);
    }
    telemetry::gauge("pool.launcher.tasks").set(stats.launcher_tasks as f64);
    telemetry::gauge("pool.launcher.steals").set(stats.launcher_steals as f64);
    telemetry::gauge("pool.sets_launched").set(stats.sets_launched as f64);
    telemetry::mark("pool_stats", |mut e| {
        e = e
            .field("context", context)
            .field("threads", rayon::current_num_threads())
            .field("workers", stats.workers.len())
            .field("launcher_tasks", stats.launcher_tasks)
            .field("launcher_steals", stats.launcher_steals)
            .field("sets_launched", stats.sets_launched)
            .field("total_tasks", stats.total_tasks());
        for (i, w) in stats.workers.iter().enumerate() {
            e = e
                .field(format!("worker{i}.tasks"), w.tasks)
                .field(format!("worker{i}.steals"), w.steals)
                .field(format!("worker{i}.idle_waits"), w.idle_waits);
        }
        e
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpinn_telemetry::MemorySink;
    use std::sync::Arc;

    #[test]
    fn pool_stats_event_carries_per_worker_fields() {
        // Force some pool activity so worker counters exist.
        use rayon::prelude::*;
        let pool = rayon::ThreadPoolBuilder::new()
            .num_threads(2)
            .build()
            .unwrap();
        let s: f64 = pool.install(|| {
            (0..32_768usize)
                .collect::<Vec<_>>()
                .par_chunks(1024)
                .map(|c| c.len() as f64)
                .sum()
        });
        assert_eq!(s, 32_768.0);

        let mem = Arc::new(MemorySink::default());
        qpinn_telemetry::install(mem.clone());
        emit_pool_stats("test");
        qpinn_telemetry::shutdown();

        let events = mem.events.lock().unwrap();
        let e = events
            .iter()
            .find(|e| e.name == "pool_stats")
            .expect("pool_stats event emitted");
        assert!(e.fields.iter().any(|(k, _)| k == "sets_launched"));
        assert!(e.fields.iter().any(|(k, _)| k == "total_tasks"));
        // Gauges mirrored for the snapshot path.
        assert!(qpinn_telemetry::gauge("pool.sets_launched").get() >= 1.0);
    }

    #[test]
    fn buffer_pool_stats_reach_telemetry() {
        // Generate some pool traffic first.
        let t = qpinn_tensor::Tensor::full([256], 1.5);
        let u = t.add(&t);
        qpinn_tensor::pool::recycle(u);
        let _reuse = t.mul(&t);

        let mem = Arc::new(MemorySink::default());
        qpinn_telemetry::install(mem.clone());
        emit_buffer_pool_stats("test");
        qpinn_telemetry::shutdown();

        let events = mem.events.lock().unwrap();
        let e = events
            .iter()
            .find(|e| e.name == "tensor_pool_stats")
            .expect("tensor_pool_stats event emitted");
        for key in ["reused", "allocated", "recycled", "simd_width"] {
            assert!(e.fields.iter().any(|(k, _)| k == key), "missing {key}");
        }
        assert!(qpinn_telemetry::gauge("tensor_pool.recycled").get() >= 1.0);
    }
}
