//! # qpinn-core
//!
//! The physics-informed training system tying the workspace together:
//!
//! * [`model`] — the [`model::FieldNet`] architecture (periodic/learned
//!   embeddings → optional random Fourier features → jet-propagating MLP)
//!   and the hybrid variant with a quantum-circuit layer;
//! * [`residual`] — PDE residual assembly for the time-dependent
//!   Schrödinger equation, the cubic NLS, and stationary eigenproblems;
//! * [`loss`] — initial-condition, boundary, and **norm-conservation**
//!   losses plus the weighted total;
//! * [`causal`] — adaptive time weighting (causal training);
//! * [`trainer`] — the Adam(+schedule) training loop with loss/error/
//!   gradient trajectories, and L-BFGS polishing;
//! * [`task`] — ready-to-train task objects for each benchmark problem;
//! * [`metrics`] — relative L2 errors against reference fields, norm-drift
//!   series;
//! * [`report`] — aligned text tables and a small JSON writer for the
//!   experiment harness;
//! * [`experiment`] — multi-seed sweep running with mean/std aggregation;
//! * [`runs`] — the `qpinn-run-v1` durable run-record store (manifest +
//!   epoch series per training run, consumed by `qpinn-obs runs` and the
//!   `/v1/runs` HTTP routes).

#![deny(missing_docs)]

pub mod catalog;
pub mod causal;
pub mod experiment;
pub mod hybrid;
pub mod loss;
pub mod metrics;
pub mod model;
pub mod obs;
pub mod report;
pub mod residual;
pub mod runs;
pub mod task;
pub mod trainer;

pub use catalog::{problems_doc, PROBLEMS_DOC_VERSION};
pub use model::{CoordSpec, FieldNet, FieldNetConfig};
pub use task::{ZooTask, ZooTaskConfig};
pub use runs::{RunConfig, RunOutcome};
pub use trainer::{
    CheckpointConfig, DivergenceGuard, PinnTask, Progress, ProgressHook, TrainConfig, TrainLog,
    Trainer,
};

#[cfg(test)]
mod proptests;
