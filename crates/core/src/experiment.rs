//! Multi-seed experiment running: train the same configuration under
//! several seeds (in parallel) and aggregate mean/std statistics, the way
//! the reconstructed tables report results.

use crate::trainer::{PinnTask, TrainConfig, TrainLog, Trainer};
use qpinn_nn::ParamSet;
use rayon::prelude::*;

/// The outcome of one seeded run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The seed used.
    pub seed: u64,
    /// Final evaluation error.
    pub error: f64,
    /// Final loss.
    pub loss: f64,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Trainable-parameter count.
    pub n_params: usize,
    /// Full trajectory log.
    pub log: TrainLog,
}

/// Aggregate statistics over seeds.
#[derive(Clone, Copy, Debug)]
pub struct Aggregate {
    /// Mean final error.
    pub mean_error: f64,
    /// Standard deviation of the final error.
    pub std_error: f64,
    /// Best (lowest) final error.
    pub best_error: f64,
    /// Mean wall-clock seconds.
    pub mean_wall_s: f64,
}

/// Mean and (population) standard deviation of a sample.
pub fn mean_std_of(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
    (mean, var.sqrt())
}

/// Run `builder(seed)` for every seed, train each task, and collect
/// per-run results. Runs execute in parallel over seeds.
///
/// `builder` must construct a fresh `(task, params)` pair from a seed.
pub fn run_seeds<T, F>(seeds: &[u64], cfg: &TrainConfig, builder: F) -> Vec<RunResult>
where
    T: PinnTask + Send,
    F: Fn(u64) -> (T, ParamSet) + Sync,
{
    run_seeds_with(seeds, |_| cfg.clone(), builder)
}

/// Like [`run_seeds`], but with a per-seed training configuration.
///
/// Needed whenever the configuration embeds per-run resources — most
/// importantly a checkpoint directory, which must be distinct per seed or
/// parallel runs would interleave snapshots in one store.
pub fn run_seeds_with<T, F, C>(seeds: &[u64], cfg_for: C, builder: F) -> Vec<RunResult>
where
    T: PinnTask + Send,
    F: Fn(u64) -> (T, ParamSet) + Sync,
    C: Fn(u64) -> TrainConfig + Sync,
{
    seeds
        .par_iter()
        .map(|&seed| {
            let (mut task, mut params) = builder(seed);
            let n_params = params.n_scalars();
            let log = Trainer::new(cfg_for(seed)).train(&mut task, &mut params);
            RunResult {
                seed,
                error: log.final_error,
                loss: log.final_loss,
                wall_s: log.wall_s,
                n_params,
                log,
            }
        })
        .collect()
}

/// Aggregate a batch of runs.
pub fn aggregate(runs: &[RunResult]) -> Aggregate {
    let errors: Vec<f64> = runs.iter().map(|r| r.error).collect();
    let (mean_error, std_error) = mean_std_of(&errors);
    Aggregate {
        mean_error,
        std_error,
        best_error: errors.iter().copied().fold(f64::INFINITY, f64::min),
        mean_wall_s: runs.iter().map(|r| r.wall_s).sum::<f64>() / runs.len().max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpinn_autodiff::Var;
    use qpinn_nn::GraphCtx;
    use qpinn_optim::LrSchedule;
    use qpinn_tensor::Tensor;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    struct Toy {
        target: f64,
        id: qpinn_nn::ParamId,
    }
    impl PinnTask for Toy {
        fn build_loss(&mut self, ctx: &mut GraphCtx<'_>) -> Var {
            let w = ctx.param(self.id);
            let d = ctx.g.add_scalar(w, -self.target);
            ctx.g.mse(d)
        }
        fn eval_error(&self, params: &ParamSet) -> f64 {
            (params.tensors()[0].item() - self.target).abs()
        }
    }

    #[test]
    fn seeds_run_in_parallel_and_aggregate() {
        let cfg = TrainConfig {
            epochs: 400,
            schedule: LrSchedule::Constant { lr: 0.05 },
            log_every: 100,
            eval_every: 0,
            clip: None,
            lbfgs_polish: None,
            checkpoint: None,
            divergence: None,
            progress: None,
            run: None,
        };
        let runs = run_seeds(&[1, 2, 3, 4], &cfg, |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut params = ParamSet::new();
            let id = params.add(
                "w",
                Tensor::from_vec([1, 1], vec![rng.gen_range(-1.0..1.0)]),
            );
            (Toy { target: 2.0, id }, params)
        });
        assert_eq!(runs.len(), 4);
        let agg = aggregate(&runs);
        assert!(agg.mean_error < 1e-2, "{agg:?}");
        assert!(agg.best_error <= agg.mean_error);
        // different seeds → different trajectories (different inits)
        assert!(runs[0].log.loss[0] != runs[1].log.loss[0]);
    }

    #[test]
    fn per_seed_configs_checkpoint_into_distinct_stores() {
        use crate::trainer::CheckpointConfig;
        let base = std::env::temp_dir().join(format!("qpinn-exp-ckpt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&base);
        let seeds = [7u64, 8];
        let base_for_cfg = base.clone();
        let runs = run_seeds_with(
            &seeds,
            |seed| TrainConfig {
                epochs: 40,
                schedule: LrSchedule::Constant { lr: 0.05 },
                log_every: 10,
                eval_every: 0,
                clip: None,
                lbfgs_polish: None,
                checkpoint: Some(
                    CheckpointConfig::new(base_for_cfg.join(format!("seed-{seed}"))).every(20),
                ),
                divergence: None,
                progress: None,
                run: None,
            },
            |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut params = ParamSet::new();
                let id = params.add(
                    "w",
                    Tensor::from_vec([1, 1], vec![rng.gen_range(-1.0..1.0)]),
                );
                (Toy { target: 2.0, id }, params)
            },
        );
        assert_eq!(runs.len(), 2);
        for seed in seeds {
            let store = qpinn_persist::SnapshotStore::open(base.join(format!("seed-{seed}")))
                .expect("store opens");
            assert!(store.has_snapshots(), "seed {seed} wrote no snapshots");
            let (snap, _) = store.load_latest().expect("intact snapshot");
            assert_eq!(snap.meta.next_epoch, 40);
        }
        let _ = std::fs::remove_dir_all(&base);
    }

    #[test]
    fn mean_std_basics() {
        let (m, s) = mean_std_of(&[1.0, 2.0, 3.0]);
        assert!((m - 2.0).abs() < 1e-15);
        assert!((s - (2.0f64 / 3.0).sqrt()).abs() < 1e-12);
        let (m2, _) = mean_std_of(&[]);
        assert!(m2.is_nan());
    }
}
