//! Loss terms: PDE residual MSE (optionally causally weighted),
//! initial-condition fit, boundary decay, and the global
//! **norm-conservation** penalty that plays the role the energy-
//! conservation regularizer plays in conservative-PDE PINNs: in a closed,
//! lossless quantum system `∫|ψ|²dx` must stay exactly 1, and penalizing
//! its drift suppresses the spurious global amplitude decay failure mode.

use crate::model::FieldNet;
use qpinn_autodiff::{Graph, Var};
use qpinn_nn::GraphCtx;
use qpinn_tensor::Tensor;

/// MSE of a residual column, optionally with constant per-point weights.
pub fn residual_mse(g: &mut Graph, r: Var, weights: Option<Var>) -> Var {
    match weights {
        Some(w) => g.weighted_mse(r, w),
        None => g.mse(r),
    }
}

/// Initial-condition loss at `t = 0` points: the predicted `(u, v)` must
/// match the target tensor (shape `[n, 2]`).
pub fn ic_loss(ctx: &mut GraphCtx<'_>, net: &FieldNet, columns: &[Var], target: &Tensor) -> Var {
    let pred = net.forward_values(ctx, columns);
    let tgt = ctx.g.constant(target.clone());
    let diff = ctx.g.sub(pred, tgt);
    ctx.g.mse(diff)
}

/// Boundary decay loss: predicted fields must vanish at the given points
/// (Dirichlet problems).
pub fn boundary_loss(ctx: &mut GraphCtx<'_>, net: &FieldNet, columns: &[Var]) -> Var {
    let pred = net.forward_values(ctx, columns);
    ctx.g.mse(pred)
}

/// Norm-conservation loss on a structured grid of `n_times` time slices ×
/// `nx` spatial points (rows ordered time-major, i.e. all `x` for slice 0,
/// then slice 1, …):
///
/// `L = mean_k ( L_dom·⟨u²+v²⟩_x(t_k) − N₀ )²`
///
/// where `N₀` is the exact initial norm. Field values only — no extra
/// derivative cost.
pub fn norm_conservation_loss(
    ctx: &mut GraphCtx<'_>,
    net: &FieldNet,
    columns: &[Var],
    nx: usize,
    domain_length: f64,
    target_norm: f64,
) -> Var {
    let pred = net.forward_values(ctx, columns);
    let u = ctx.g.col(pred, 0);
    let v = ctx.g.col(pred, 1);
    let u2 = ctx.g.square(u);
    let v2 = ctx.g.square(v);
    let dens = ctx.g.add(u2, v2);
    let per_slice = ctx.g.mean_groups(dens, nx);
    let norm = ctx.g.scale(per_slice, domain_length);
    let drift = ctx.g.add_scalar(norm, -target_norm);
    ctx.g.mse(drift)
}

/// Weighted total loss: `Σ wᵢ·termᵢ`.
pub fn total_loss(g: &mut Graph, terms: &[(f64, Var)]) -> Var {
    g.lincomb(terms)
}

/// Mirror each *unweighted* named loss term into a `train.loss.<name>`
/// gauge, so `/metrics` and final snapshots expose the loss
/// decomposition (pde vs ic vs conservation …), not just the weighted
/// total the trainer logs. Forward values are already computed during
/// graph construction, so this reads existing numbers — no extra passes.
pub fn publish_components(g: &Graph, terms: &[(&str, Var)]) {
    for (name, v) in terms {
        qpinn_telemetry::gauge(&format!("train.loss.{name}")).set(g.value(*v).item());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FieldNet, FieldNetConfig};
    use qpinn_nn::ParamSet;
    use rand::{rngs::StdRng, SeedableRng};

    fn toy_net() -> (ParamSet, FieldNet) {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let cfg = FieldNetConfig::plain(2, 8, 1, 2);
        let net = FieldNet::new(&mut params, &mut rng, &cfg, "net");
        (params, net)
    }

    #[test]
    fn ic_loss_is_zero_for_perfect_prediction() {
        let (params, net) = toy_net();
        let pts = vec![vec![0.1, 0.0], vec![0.5, 0.0]];
        let target = net.predict(&params, &pts);
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let x = ctx.g.constant(Tensor::column(&[0.1, 0.5]));
        let t = ctx.g.constant(Tensor::column(&[0.0, 0.0]));
        let l = ic_loss(&mut ctx, &net, &[x, t], &target);
        assert!(g.value(l).item() < 1e-28);
    }

    #[test]
    fn ic_loss_positive_for_mismatch() {
        let (params, net) = toy_net();
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let x = ctx.g.constant(Tensor::column(&[0.1, 0.5]));
        let t = ctx.g.constant(Tensor::column(&[0.0, 0.0]));
        let target = Tensor::full([2, 2], 10.0);
        let l = ic_loss(&mut ctx, &net, &[x, t], &target);
        assert!(g.value(l).item() > 50.0);
    }

    #[test]
    fn conservation_loss_detects_drift() {
        // Hand-build a "network" situation via the real net, then verify
        // the loss formula on known values: two time slices with constant
        // densities 1/L and 2/L should give mean((1−1)², (2−1)²)/… = 0.5.
        // We verify the grouping arithmetic directly on the tape ops used
        // by the loss instead (the net itself is a black box).
        let mut g = Graph::new();
        let dens = g.constant(Tensor::column(&[0.5, 0.5, 1.0, 1.0])); // u²+v²
        let per_slice = g.mean_groups(dens, 2);
        let norm = g.scale(per_slice, 2.0); // L = 2 → norms [1, 2]
        let drift = g.add_scalar(norm, -1.0);
        let l = g.mse(drift);
        assert!((g.value(l).item() - 0.5).abs() < 1e-14);
    }

    #[test]
    fn conservation_loss_runs_through_network() {
        let (params, net) = toy_net();
        let (nt, nx) = (3, 4);
        let mut xs = Vec::new();
        let mut ts = Vec::new();
        for k in 0..nt {
            for i in 0..nx {
                ts.push(k as f64 * 0.1);
                xs.push(-1.0 + 2.0 * i as f64 / nx as f64);
            }
        }
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let x = ctx.g.constant(Tensor::column(&xs));
        let t = ctx.g.constant(Tensor::column(&ts));
        let l = norm_conservation_loss(&mut ctx, &net, &[x, t], nx, 2.0, 1.0);
        let val = ctx.g.value(l).item();
        assert!(val.is_finite() && val >= 0.0);
        // gradient flows to parameters
        let mut grads = ctx.g.backward(l);
        let collected = ctx.collect_grads(&mut grads);
        assert!(collected.iter().any(|t| t.max_abs() > 0.0));
    }

    #[test]
    fn total_loss_weights_terms() {
        let mut g = Graph::new();
        let a = g.constant(Tensor::scalar(2.0));
        let b = g.constant(Tensor::scalar(3.0));
        let l = total_loss(&mut g, &[(1.0, a), (10.0, b)]);
        assert!((g.value(l).item() - 32.0).abs() < 1e-14);
    }
}
