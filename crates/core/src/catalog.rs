//! The machine-readable problem/ansatz catalog: the `qpinn-problems-v1`
//! document listing every registered PDE family (key, domain, outputs,
//! cross-check method) and every circuit template. The serve plane
//! exposes it at `/v1/problems`, and `tests/conformance.rs` freezes it as
//! a fixture so registry drift — a removed family, a silently changed
//! domain, a dropped cross-check — fails CI instead of passing quietly.

use crate::report::Json;
use qpinn_problems::zoo::{keys, lookup};
use qpinn_qcircuit::Ansatz;

/// Format version tag of the catalog document.
pub const PROBLEMS_DOC_VERSION: &str = "qpinn-problems-v1";

/// Build the full catalog document. Deterministic: same registry, same
/// JSON, byte for byte — that is what makes it freezable as a fixture.
pub fn problems_doc() -> Json {
    let problems: Vec<Json> = keys()
        .into_iter()
        .map(|k| {
            let p = lookup(k).expect("registered key must resolve");
            let coords: Vec<Json> = p
                .coords()
                .iter()
                .map(|c| {
                    Json::obj(vec![
                        ("name", Json::Str(c.name.to_string())),
                        ("lo", Json::Num(c.lo)),
                        ("hi", Json::Num(c.hi)),
                        ("kind", Json::Str(format!("{:?}", c.kind).to_lowercase())),
                    ])
                })
                .collect();
            Json::obj(vec![
                ("key", Json::Str(k.to_string())),
                ("describe", Json::Str(p.describe().to_string())),
                ("coords", Json::Arr(coords)),
                ("n_outputs", Json::Num(p.n_outputs() as f64)),
                ("analytic", Json::Bool(p.analytic(&probe_point(&p)).is_some())),
                (
                    "independent_check",
                    Json::Bool(p.independent_check().is_some()),
                ),
                ("check_method", Json::Str(p.check_method().to_string())),
                ("residual_tol", Json::Num(p.residual_tol())),
            ])
        })
        .collect();
    let ansatze: Vec<Json> = Ansatz::all()
        .iter()
        .map(|a| {
            Json::obj(vec![
                ("name", Json::Str(a.name().to_string())),
                ("params_4q_2l", Json::Num(a.n_params(4, 2) as f64)),
            ])
        })
        .collect();
    Json::obj(vec![
        ("version", Json::Str(PROBLEMS_DOC_VERSION.to_string())),
        ("problems", Json::Arr(problems)),
        ("ansatze", Json::Arr(ansatze)),
    ])
}

/// Domain midpoint — a valid sample point for probing `analytic`.
fn probe_point(p: &Box<dyn qpinn_problems::PdeProblem>) -> Vec<f64> {
    p.coords().iter().map(|c| 0.5 * (c.lo + c.hi)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_lists_every_registered_problem_and_ansatz() {
        let doc = problems_doc();
        let text = doc.to_string();
        for k in keys() {
            assert!(text.contains(&format!("\"{k}\"")), "missing problem {k}");
        }
        for a in Ansatz::all() {
            assert!(text.contains(a.name()), "missing ansatz {}", a.name());
        }
        assert!(text.contains(PROBLEMS_DOC_VERSION));
    }

    #[test]
    fn doc_is_deterministic() {
        assert_eq!(problems_doc().to_string(), problems_doc().to_string());
    }

    #[test]
    fn every_problem_advertises_a_cross_check() {
        // The conformance contract: analytic or an independent numeric
        // check, for every family, no exceptions.
        let doc = problems_doc().to_string();
        assert!(!doc.is_empty());
        for k in keys() {
            let p = lookup(k).unwrap();
            let probe: Vec<f64> =
                p.coords().iter().map(|c| 0.5 * (c.lo + c.hi)).collect();
            assert!(
                p.analytic(&probe).is_some() || p.independent_check().is_some(),
                "{k} has neither an analytic solution nor an independent check"
            );
        }
    }
}
