//! Property-based tests over the model machinery: for *random
//! architectures*, the jet-propagated derivatives must agree with finite
//! differences, and the structural invariants of the loss pipeline must
//! hold.

use crate::model::{CoordSpec, FieldNet, FieldNetConfig, RffSpec};
use proptest::prelude::*;
use qpinn_autodiff::jet::Jet;
use qpinn_autodiff::Graph;
use qpinn_nn::{Activation, GraphCtx, ParamSet};
use qpinn_tensor::Tensor;
use rand::{rngs::StdRng, SeedableRng};

#[derive(Debug, Clone)]
struct ArchCase {
    width: usize,
    depth: usize,
    rff: bool,
    periodic_x: bool,
    activation: Activation,
    seed: u64,
    x0: f64,
    t0: f64,
}

fn arch_strategy() -> impl Strategy<Value = ArchCase> {
    (
        4usize..16,
        1usize..3,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        0u64..1000,
        -1.5..1.5f64,
        0.05..0.9f64,
    )
        .prop_map(
            |(width, depth, rff, periodic_x, act, seed, x0, t0)| ArchCase {
                width,
                depth,
                rff,
                periodic_x,
                activation: if act {
                    Activation::Tanh
                } else {
                    Activation::Sin
                },
                seed,
                x0,
                t0,
            },
        )
}

fn build_net(case: &ArchCase) -> (ParamSet, FieldNet) {
    let cfg = FieldNetConfig {
        coords: vec![
            if case.periodic_x {
                CoordSpec::Periodic { length: 4.0 }
            } else {
                CoordSpec::Raw
            },
            CoordSpec::LearnedPeriod { period0: 3.0 },
        ],
        rff: if case.rff {
            Some(RffSpec {
                n_features: 8,
                sigma: 1.0,
            })
        } else {
            None
        },
        hidden: vec![case.width; case.depth],
        n_fields: 2,
        activation: case.activation,
    };
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(case.seed);
    let net = FieldNet::new(&mut params, &mut rng, &cfg, "prop");
    (params, net)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn jet_first_derivatives_match_fd_for_random_architectures(case in arch_strategy()) {
        let (params, net) = build_net(&case);
        let h = 1e-5;
        let f = |x: f64, t: f64, field: usize| -> f64 {
            net.predict(&params, &[vec![x, t]]).get(&[0, field])
        };
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let xc = ctx.g.constant(Tensor::column(&[case.x0]));
        let tc = ctx.g.constant(Tensor::column(&[case.t0]));
        let out = net.forward_jet(&mut ctx, &[xc, tc]);
        for field in 0..2 {
            let ux = g.value(out.d[0]).get(&[0, field]);
            let ut = g.value(out.d[1]).get(&[0, field]);
            let fdx = (f(case.x0 + h, case.t0, field) - f(case.x0 - h, case.t0, field)) / (2.0 * h);
            let fdt = (f(case.x0, case.t0 + h, field) - f(case.x0, case.t0 - h, field)) / (2.0 * h);
            prop_assert!((ux - fdx).abs() < 1e-4 * fdx.abs().max(1.0), "u_x {ux} vs {fdx} ({case:?})");
            prop_assert!((ut - fdt).abs() < 1e-4 * fdt.abs().max(1.0), "u_t {ut} vs {fdt} ({case:?})");
        }
    }

    #[test]
    fn jet_second_derivatives_match_fd_for_random_architectures(case in arch_strategy()) {
        let (params, net) = build_net(&case);
        let h = 5e-4;
        let f = |x: f64, field: usize| -> f64 {
            net.predict(&params, &[vec![x, case.t0]]).get(&[0, field])
        };
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let xc = ctx.g.constant(Tensor::column(&[case.x0]));
        let tc = ctx.g.constant(Tensor::column(&[case.t0]));
        let out = net.forward_jet(&mut ctx, &[xc, tc]);
        for field in 0..2 {
            let uxx = g.value(out.dd[0]).get(&[0, field]);
            let fdxx = (f(case.x0 + h, field) - 2.0 * f(case.x0, field) + f(case.x0 - h, field)) / (h * h);
            prop_assert!(
                (uxx - fdxx).abs() < 5e-3 * fdxx.abs().max(1.0),
                "u_xx {uxx} vs {fdxx} ({case:?})"
            );
        }
    }

    #[test]
    fn value_only_path_matches_jet_path(case in arch_strategy()) {
        let (params, net) = build_net(&case);
        let pts = vec![vec![case.x0, case.t0], vec![-case.x0, 1.0 - case.t0]];
        let direct = net.predict(&params, &pts);
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let xc = ctx.g.constant(Tensor::column(&[case.x0, -case.x0]));
        let tc = ctx.g.constant(Tensor::column(&[case.t0, 1.0 - case.t0]));
        let out = net.forward_jet(&mut ctx, &[xc, tc]);
        prop_assert!(g.value(out.v).approx_eq(&direct, 1e-12));
    }

    #[test]
    fn parameter_gradients_of_jet_losses_are_finite(case in arch_strategy()) {
        // A residual-style loss mixing value, first, and second derivative
        // slots must produce finite gradients for every parameter.
        let (params, net) = build_net(&case);
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let xc = ctx.g.constant(Tensor::column(&[case.x0, 0.2, -0.7]));
        let tc = ctx.g.constant(Tensor::column(&[case.t0, 0.4, 0.1]));
        let out = net.forward_jet(&mut ctx, &[xc, tc]);
        let jet = Jet {
            v: out.v,
            d: out.d.clone(),
            dd: out.dd.clone(),
        };
        let mix = ctx.g.add(jet.d[1], jet.dd[0]);
        let mix2 = ctx.g.add(mix, jet.v);
        let loss = ctx.g.mse(mix2);
        let mut grads = ctx.g.backward(loss);
        let collected = ctx.collect_grads(&mut grads);
        for (i, t) in collected.iter().enumerate() {
            prop_assert!(t.all_finite(), "param {i} has non-finite gradient");
        }
    }

    #[test]
    fn causal_weights_stay_in_unit_interval(losses in proptest::collection::vec(0.0..10.0f64, 5), eps in 0.01..5.0f64) {
        let times: Vec<f64> = (0..20).map(|i| i as f64 / 20.0).collect();
        let mut cw = crate::causal::CausalWeights::new(0.0, 1.0, 5, eps, &times);
        // fake per-point residuals from per-bin losses
        let r2: Vec<f64> = times.iter().map(|&t| {
            let bin = (t * 5.0) as usize;
            losses[bin.min(4)]
        }).collect();
        cw.update(&r2);
        for &w in cw.bin_weights() {
            prop_assert!((0.0..=1.0).contains(&w));
        }
        prop_assert_eq!(cw.bin_weights()[0], 1.0);
    }
}
