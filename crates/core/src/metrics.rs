//! Evaluation metrics: relative L2 error against reference fields, norm
//! drift, eigenvalue error.

use crate::model::FieldNet;
use qpinn_nn::ParamSet;
use qpinn_solvers::Field1d;

/// Relative L2 error of the network's complex field against a reference
/// [`Field1d`], over a dense `nx × nt` space-time evaluation grid:
///
/// `‖ψ_net − ψ_ref‖₂ / ‖ψ_ref‖₂` (both parts pooled).
pub fn rel_l2_error_field(
    net: &FieldNet,
    params: &ParamSet,
    reference: &Field1d,
    nx: usize,
    nt: usize,
) -> f64 {
    let grid = reference.grid();
    let t_end = *reference.times().last().unwrap();
    let mut points = Vec::with_capacity(nx * nt);
    let mut refs = Vec::with_capacity(nx * nt);
    for k in 0..nt {
        let t = t_end * k as f64 / (nt - 1).max(1) as f64;
        for i in 0..nx {
            let x = grid.x0 + (grid.x1 - grid.x0) * i as f64 / nx as f64;
            points.push(vec![x, t]);
            refs.push(reference.sample(x, t));
        }
    }
    let pred = net.predict(params, &points);
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, r) in refs.iter().enumerate() {
        let du = pred.get(&[i, 0]) - r.re;
        let dv = pred.get(&[i, 1]) - r.im;
        num += du * du + dv * dv;
        den += r.norm_sqr();
    }
    (num / den).sqrt()
}

/// The network's `∫|ψ|²dx` at each requested time (uniform spatial
/// quadrature over the periodic domain).
pub fn norm_series(
    net: &FieldNet,
    params: &ParamSet,
    x0: f64,
    x1: f64,
    nx: usize,
    times: &[f64],
) -> Vec<f64> {
    let l = x1 - x0;
    times
        .iter()
        .map(|&t| {
            let points: Vec<Vec<f64>> = (0..nx)
                .map(|i| vec![x0 + l * i as f64 / nx as f64, t])
                .collect();
            let pred = net.predict(params, &points);
            let mean_dens: f64 = (0..nx)
                .map(|i| pred.get(&[i, 0]).powi(2) + pred.get(&[i, 1]).powi(2))
                .sum::<f64>()
                / nx as f64;
            mean_dens * l
        })
        .collect()
}

/// Relative L2 error of a real 1D profile against reference samples on the
/// same abscissae, invariant to a global sign flip (wavefunctions are
/// defined up to phase).
pub fn rel_l2_error_profile(pred: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(pred.len(), reference.len());
    let den: f64 = reference.iter().map(|r| r * r).sum::<f64>().sqrt();
    let err = |sign: f64| -> f64 {
        pred.iter()
            .zip(reference)
            .map(|(p, r)| (sign * p - r).powi(2))
            .sum::<f64>()
            .sqrt()
    };
    err(1.0).min(err(-1.0)) / den
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{FieldNet, FieldNetConfig};
    use qpinn_dual::Complex64;
    use qpinn_solvers::Grid1d;
    use rand::{rngs::StdRng, SeedableRng};

    /// A network forced to output exactly `(re, im)` everywhere: all
    /// weights zeroed (tanh(0) = 0 through every hidden layer), output
    /// bias set to the constants. Turns the metrics into analytically
    /// checkable quantities.
    fn constant_net(re: f64, im: f64) -> (FieldNet, ParamSet) {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let net = FieldNet::new(
            &mut params,
            &mut rng,
            &FieldNetConfig::plain(2, 8, 2, 2),
            "n",
        );
        for t in params.tensors_mut() {
            for v in t.data_mut() {
                *v = 0.0;
            }
        }
        let idx = params
            .iter()
            .position(|(_, name, _)| name == "n.out.b")
            .expect("output bias exists");
        params.tensors_mut()[idx]
            .data_mut()
            .copy_from_slice(&[re, im]);
        (net, params)
    }

    /// A reference field equal to the constant `(re, im)` everywhere.
    fn constant_field(re: f64, im: f64, x0: f64, x1: f64) -> Field1d {
        let grid = Grid1d::periodic(x0, x1, 16);
        let times = vec![0.0, 0.5, 1.0];
        let data = times
            .iter()
            .map(|_| vec![Complex64::new(re, im); grid.n])
            .collect();
        Field1d::new(grid, times, data)
    }

    #[test]
    fn field_error_is_zero_on_exact_reference() {
        let (net, params) = constant_net(3.0, 4.0);
        let reference = constant_field(3.0, 4.0, -1.0, 1.0);
        let err = rel_l2_error_field(&net, &params, &reference, 32, 8);
        assert!(err < 1e-12, "exact match must give ~0 error, got {err}");
    }

    #[test]
    fn field_error_matches_analytic_value_for_constant_offset() {
        // net ≡ 3 + 4i, reference ≡ 0 + 4i ⇒ pointwise error 3, so
        // rel-L2 = ‖3‖/‖(0,4)‖ = 3/4 at every grid size.
        let (net, params) = constant_net(3.0, 4.0);
        let reference = constant_field(0.0, 4.0, -1.0, 1.0);
        for (nx, nt) in [(8, 3), (32, 8)] {
            let err = rel_l2_error_field(&net, &params, &reference, nx, nt);
            assert!((err - 0.75).abs() < 1e-12, "nx={nx} nt={nt}: {err}");
        }
    }

    #[test]
    fn field_error_handles_single_time_slice() {
        // nt == 1 must not divide by zero: the lone slice sits at t = 0.
        let (net, params) = constant_net(3.0, 4.0);
        let reference = constant_field(3.0, 4.0, -1.0, 1.0);
        let err = rel_l2_error_field(&net, &params, &reference, 16, 1);
        assert!(err.is_finite());
        assert!(err < 1e-12, "constant field at t=0 must match: {err}");
    }

    #[test]
    fn norm_series_has_analytic_value_for_constant_density() {
        // |ψ|² = 3² + 4² = 25 everywhere ⇒ ∫|ψ|²dx = 25·(x1−x0).
        let (net, params) = constant_net(3.0, 4.0);
        let s = norm_series(&net, &params, -1.0, 1.0, 32, &[0.0, 0.3, 1.0]);
        assert_eq!(s.len(), 3);
        for v in &s {
            assert!((v - 50.0).abs() < 1e-12, "norm {v} != 25·L");
        }
    }

    #[test]
    fn profile_error_is_sign_invariant() {
        let r = [1.0, 2.0, 3.0];
        let p = [-1.0, -2.0, -3.0];
        assert!(rel_l2_error_profile(&p, &r) < 1e-15);
        let q = [1.1, 2.0, 3.0];
        let want = 0.1 / 14f64.sqrt();
        assert!((rel_l2_error_profile(&q, &r) - want).abs() < 1e-12);
    }

    #[test]
    fn field_error_zero_against_itself() {
        // Build a trivial constant reference and a net; error of the net
        // against the net's own samples must be ~0 — checked indirectly by
        // the integration tests; here check norm_series on a fresh net is
        // finite and positive.
        use crate::model::{FieldNet, FieldNetConfig};
        use qpinn_nn::ParamSet;
        use rand::{rngs::StdRng, SeedableRng};
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let net = FieldNet::new(
            &mut params,
            &mut rng,
            &FieldNetConfig::plain(2, 8, 1, 2),
            "n",
        );
        let s = norm_series(&net, &params, -1.0, 1.0, 32, &[0.0, 0.5, 1.0]);
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|v| v.is_finite() && *v >= 0.0));
    }
}
