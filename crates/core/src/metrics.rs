//! Evaluation metrics: relative L2 error against reference fields, norm
//! drift, eigenvalue error.

use crate::model::FieldNet;
use qpinn_nn::ParamSet;
use qpinn_solvers::Field1d;

/// Relative L2 error of the network's complex field against a reference
/// [`Field1d`], over a dense `nx × nt` space-time evaluation grid:
///
/// `‖ψ_net − ψ_ref‖₂ / ‖ψ_ref‖₂` (both parts pooled).
pub fn rel_l2_error_field(
    net: &FieldNet,
    params: &ParamSet,
    reference: &Field1d,
    nx: usize,
    nt: usize,
) -> f64 {
    let grid = reference.grid();
    let t_end = *reference.times().last().unwrap();
    let mut points = Vec::with_capacity(nx * nt);
    let mut refs = Vec::with_capacity(nx * nt);
    for k in 0..nt {
        let t = t_end * k as f64 / (nt - 1).max(1) as f64;
        for i in 0..nx {
            let x = grid.x0 + (grid.x1 - grid.x0) * i as f64 / nx as f64;
            points.push(vec![x, t]);
            refs.push(reference.sample(x, t));
        }
    }
    let pred = net.predict(params, &points);
    let mut num = 0.0;
    let mut den = 0.0;
    for (i, r) in refs.iter().enumerate() {
        let du = pred.get(&[i, 0]) - r.re;
        let dv = pred.get(&[i, 1]) - r.im;
        num += du * du + dv * dv;
        den += r.norm_sqr();
    }
    (num / den).sqrt()
}

/// The network's `∫|ψ|²dx` at each requested time (uniform spatial
/// quadrature over the periodic domain).
pub fn norm_series(
    net: &FieldNet,
    params: &ParamSet,
    x0: f64,
    x1: f64,
    nx: usize,
    times: &[f64],
) -> Vec<f64> {
    let l = x1 - x0;
    times
        .iter()
        .map(|&t| {
            let points: Vec<Vec<f64>> = (0..nx)
                .map(|i| vec![x0 + l * i as f64 / nx as f64, t])
                .collect();
            let pred = net.predict(params, &points);
            let mean_dens: f64 = (0..nx)
                .map(|i| pred.get(&[i, 0]).powi(2) + pred.get(&[i, 1]).powi(2))
                .sum::<f64>()
                / nx as f64;
            mean_dens * l
        })
        .collect()
}

/// Relative L2 error of a real 1D profile against reference samples on the
/// same abscissae, invariant to a global sign flip (wavefunctions are
/// defined up to phase).
pub fn rel_l2_error_profile(pred: &[f64], reference: &[f64]) -> f64 {
    assert_eq!(pred.len(), reference.len());
    let den: f64 = reference.iter().map(|r| r * r).sum::<f64>().sqrt();
    let err = |sign: f64| -> f64 {
        pred.iter()
            .zip(reference)
            .map(|(p, r)| (sign * p - r).powi(2))
            .sum::<f64>()
            .sqrt()
    };
    err(1.0).min(err(-1.0)) / den
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_error_is_sign_invariant() {
        let r = [1.0, 2.0, 3.0];
        let p = [-1.0, -2.0, -3.0];
        assert!(rel_l2_error_profile(&p, &r) < 1e-15);
        let q = [1.1, 2.0, 3.0];
        let want = 0.1 / 14f64.sqrt();
        assert!((rel_l2_error_profile(&q, &r) - want).abs() < 1e-12);
    }

    #[test]
    fn field_error_zero_against_itself() {
        // Build a trivial constant reference and a net; error of the net
        // against the net's own samples must be ~0 — checked indirectly by
        // the integration tests; here check norm_series on a fresh net is
        // finite and positive.
        use crate::model::{FieldNet, FieldNetConfig};
        use qpinn_nn::ParamSet;
        use rand::{rngs::StdRng, SeedableRng};
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let net = FieldNet::new(
            &mut params,
            &mut rng,
            &FieldNetConfig::plain(2, 8, 1, 2),
            "n",
        );
        let s = norm_series(&net, &params, -1.0, 1.0, 32, &[0.0, 0.5, 1.0]);
        assert_eq!(s.len(), 3);
        assert!(s.iter().all(|v| v.is_finite() && *v >= 0.0));
    }
}
