//! The time-dependent Schrödinger training task.

use crate::causal::CausalWeights;
use crate::loss;
use crate::metrics;
use crate::model::{FieldNet, FieldNetConfig};
use crate::residual::{split_complex, tdse_residuals};
use crate::task::LossWeights;
use crate::trainer::PinnTask;
use qpinn_autodiff::Var;
use qpinn_nn::{GraphCtx, ParamSet};
use qpinn_problems::TdseProblem;
use qpinn_sampling::{latin_hypercube, Domain};
use qpinn_solvers::Field1d;
use qpinn_tensor::Tensor;
use rand::rngs::StdRng;

/// Configuration of a [`TdseTask`].
#[derive(Clone, Debug)]
pub struct TdseTaskConfig {
    /// Network architecture.
    pub net: FieldNetConfig,
    /// Number of interior collocation points (Latin hypercube).
    pub n_collocation: usize,
    /// Number of initial-condition points.
    pub n_ic: usize,
    /// Loss weights.
    pub weights: LossWeights,
    /// Causal time weighting: `(bins, epsilon)`, `None` to disable.
    pub causal: Option<(usize, f64)>,
    /// Conservation grid `(n_times, n_x)` when the conservation term is on.
    pub conservation_grid: (usize, usize),
    /// Reference resolution `(nx, nt_steps, slices)`.
    pub reference: (usize, usize, usize),
    /// Evaluation grid `(nx, nt)` for the L2 metric.
    pub eval_grid: (usize, usize),
}

impl TdseTaskConfig {
    /// Sensible defaults for a problem: standard-wave net, 4096 collocation
    /// points, conservation on.
    pub fn standard(problem: &TdseProblem, width: usize, depth: usize) -> Self {
        TdseTaskConfig {
            net: FieldNetConfig::standard_wave(problem.length(), problem.t_end, width, depth),
            n_collocation: 4096,
            n_ic: 256,
            weights: LossWeights::default(),
            causal: Some((5, 1.0)),
            conservation_grid: (8, 64),
            reference: (256, 1000, 64),
            eval_grid: (128, 64),
        }
    }
}

/// A fully assembled TDSE PINN task.
pub struct TdseTask {
    problem: TdseProblem,
    net: FieldNet,
    xs: Vec<f64>,
    ts: Vec<f64>,
    potential_col: Tensor,
    ic_cols: (Tensor, Tensor),
    ic_target: Tensor,
    cons: Option<(Tensor, Tensor, usize, f64)>,
    causal: Option<CausalWeights>,
    weights: LossWeights,
    reference: Field1d,
    eval_grid: (usize, usize),
}

impl TdseTask {
    /// Build the task: network parameters are registered into `params`,
    /// collocation points sampled from `rng`, reference computed.
    pub fn new(
        problem: TdseProblem,
        cfg: &TdseTaskConfig,
        params: &mut ParamSet,
        rng: &mut StdRng,
    ) -> Self {
        let net = FieldNet::new(params, rng, &cfg.net, "tdse");

        let domain = Domain::new(&[(problem.x0, problem.x1), (0.0, problem.t_end)]);
        let pts = latin_hypercube(&domain, cfg.n_collocation, rng);
        let xs: Vec<f64> = pts.iter().map(|p| p[0]).collect();
        let ts: Vec<f64> = pts.iter().map(|p| p[1]).collect();
        let potential_col = Tensor::column(
            &xs.iter()
                .map(|&x| problem.potential.eval(x))
                .collect::<Vec<_>>(),
        );

        // IC points: uniform over x at t = 0 with exact targets.
        let ic_x: Vec<f64> = (0..cfg.n_ic)
            .map(|i| problem.x0 + problem.length() * i as f64 / cfg.n_ic as f64)
            .collect();
        let mut ic_t = Vec::with_capacity(cfg.n_ic);
        let mut target = Vec::with_capacity(cfg.n_ic * 2);
        for &x in &ic_x {
            ic_t.push(0.0);
            let psi = problem.initial(x);
            target.push(psi.re);
            target.push(psi.im);
        }
        let ic_cols = (Tensor::column(&ic_x), Tensor::column(&ic_t));
        let ic_target = Tensor::from_vec([cfg.n_ic, 2], target);

        // Conservation grid: time-major so mean_groups averages per slice.
        let cons = if cfg.weights.conservation > 0.0 {
            let (ntc, nxc) = cfg.conservation_grid;
            let mut cx = Vec::with_capacity(ntc * nxc);
            let mut ct = Vec::with_capacity(ntc * nxc);
            for k in 0..ntc {
                let t = problem.t_end * (k + 1) as f64 / ntc as f64;
                for i in 0..nxc {
                    ct.push(t);
                    cx.push(problem.x0 + problem.length() * i as f64 / nxc as f64);
                }
            }
            // exact initial norm via quadrature of the analytic IC
            let nq = 1024;
            let dens_mean: f64 = (0..nq)
                .map(|i| {
                    let x = problem.x0 + problem.length() * i as f64 / nq as f64;
                    problem.initial(x).norm_sqr()
                })
                .sum::<f64>()
                / nq as f64;
            let n0 = dens_mean * problem.length();
            Some((Tensor::column(&cx), Tensor::column(&ct), nxc, n0))
        } else {
            None
        };

        let causal = cfg
            .causal
            .map(|(m, eps)| CausalWeights::new(0.0, problem.t_end, m, eps, &ts));

        let (rnx, rnt, rsl) = cfg.reference;
        let reference = problem.reference(rnx, rnt, rsl);

        TdseTask {
            problem,
            net,
            xs,
            ts,
            potential_col,
            ic_cols,
            ic_target,
            cons,
            causal,
            weights: cfg.weights,
            reference,
            eval_grid: cfg.eval_grid,
        }
    }

    /// The underlying problem.
    pub fn problem(&self) -> &TdseProblem {
        &self.problem
    }

    /// The network (for inspection / prediction).
    pub fn net(&self) -> &FieldNet {
        &self.net
    }

    /// The reference field.
    pub fn reference(&self) -> &Field1d {
        &self.reference
    }

    /// Norm drift diagnostic: the network's `∫|ψ|²dx` at the given times.
    pub fn norm_series(&self, params: &ParamSet, times: &[f64]) -> Vec<f64> {
        metrics::norm_series(
            &self.net,
            params,
            self.problem.x0,
            self.problem.x1,
            256,
            times,
        )
    }
}

impl PinnTask for TdseTask {
    fn build_loss(&mut self, ctx: &mut GraphCtx<'_>) -> Var {
        // PDE residuals with jets.
        let (xcol, tcol) = {
            let _span = qpinn_telemetry::span("sample");
            qpinn_telemetry::counter("train.collocation_points").add(self.xs.len() as u64);
            let xcol = ctx.g.constant(Tensor::column(&self.xs));
            let tcol = ctx.g.constant(Tensor::column(&self.ts));
            (xcol, tcol)
        };
        let psi = {
            let _span = qpinn_telemetry::span("forward");
            let out = self.net.forward_jet(ctx, &[xcol, tcol]);
            split_complex(ctx.g, &out)
        };
        let residual_span = qpinn_telemetry::span("residual");
        let vpot = ctx.g.constant(self.potential_col.clone());
        let (ru, rv) = tdse_residuals(ctx.g, &psi, vpot);

        // Causal weighting (update from current raw residuals first).
        let wvar = match &mut self.causal {
            Some(cw) => {
                let r2: Vec<f64> = ctx
                    .g
                    .value(ru)
                    .data()
                    .iter()
                    .zip(ctx.g.value(rv).data())
                    .map(|(a, b)| a * a + b * b)
                    .collect();
                cw.update(&r2);
                let w = cw.point_weights();
                Some(ctx.g.constant(Tensor::column(&w)))
            }
            None => None,
        };
        let lu = loss::residual_mse(ctx.g, ru, wvar);
        let lv = loss::residual_mse(ctx.g, rv, wvar);
        let lpde = ctx.g.add(lu, lv);
        drop(residual_span);

        // Initial condition.
        let icx = ctx.g.constant(self.ic_cols.0.clone());
        let ict = ctx.g.constant(self.ic_cols.1.clone());
        let lic = loss::ic_loss(ctx, &self.net, &[icx, ict], &self.ic_target);

        // Conservation.
        let mut terms = vec![(1.0, lpde), (self.weights.ic, lic)];
        if let Some((cx, ct, nxc, n0)) = &self.cons {
            let cxv = ctx.g.constant(cx.clone());
            let ctv = ctx.g.constant(ct.clone());
            let lcons = loss::norm_conservation_loss(
                ctx,
                &self.net,
                &[cxv, ctv],
                *nxc,
                self.problem.length(),
                *n0,
            );
            terms.push((self.weights.conservation, lcons));
            loss::publish_components(
                ctx.g,
                &[("pde", lpde), ("ic", lic), ("conservation", lcons)],
            );
        } else {
            loss::publish_components(ctx.g, &[("pde", lpde), ("ic", lic)]);
        }
        loss::total_loss(ctx.g, &terms)
    }

    fn eval_error(&self, params: &ParamSet) -> f64 {
        metrics::rel_l2_error_field(
            &self.net,
            params,
            &self.reference,
            self.eval_grid.0,
            self.eval_grid.1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_cfg(problem: &TdseProblem) -> TdseTaskConfig {
        let mut cfg = TdseTaskConfig::standard(problem, 16, 2);
        cfg.n_collocation = 128;
        cfg.n_ic = 32;
        cfg.conservation_grid = (3, 16);
        cfg.reference = (128, 200, 16);
        cfg.eval_grid = (32, 8);
        cfg
    }

    #[test]
    fn loss_builds_and_is_finite() {
        let problem = TdseProblem::free_packet();
        let cfg = tiny_cfg(&problem);
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut task = TdseTask::new(problem, &cfg, &mut params, &mut rng);
        let mut g = qpinn_autodiff::Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let l = task.build_loss(&mut ctx);
        let val = g.value(l).item();
        assert!(val.is_finite() && val > 0.0);
    }

    #[test]
    fn gradients_reach_every_parameter_kind() {
        let problem = TdseProblem::free_packet();
        let cfg = tiny_cfg(&problem);
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut task = TdseTask::new(problem, &cfg, &mut params, &mut rng);
        let mut g = qpinn_autodiff::Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let l = task.build_loss(&mut ctx);
        let mut grads = ctx.g.backward(l);
        let collected = ctx.collect_grads(&mut grads);
        let nonzero = collected.iter().filter(|t| t.max_abs() > 0.0).count();
        assert!(
            nonzero >= collected.len() - 1,
            "{nonzero}/{} params got gradients",
            collected.len()
        );
    }

    #[test]
    fn short_training_reduces_loss() {
        use crate::trainer::{TrainConfig, Trainer};
        use qpinn_optim::LrSchedule;
        let problem = TdseProblem::free_packet();
        let cfg = tiny_cfg(&problem);
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(2);
        let mut task = TdseTask::new(problem, &cfg, &mut params, &mut rng);
        let trainer = Trainer::new(TrainConfig {
            epochs: 60,
            schedule: LrSchedule::Constant { lr: 2e-3 },
            log_every: 10,
            eval_every: 0,
            clip: Some(100.0),
            lbfgs_polish: None,
            checkpoint: None,
            divergence: None,
            progress: None,
            run: None,
        });
        let log = trainer.train(&mut task, &mut params);
        assert!(
            log.final_loss < log.loss[0],
            "loss did not drop: {} → {}",
            log.loss[0],
            log.final_loss
        );
        assert!(log.final_error.is_finite());
    }
}
