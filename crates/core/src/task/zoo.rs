//! The generic registry-driven training task: one [`PinnTask`]
//! implementation that trains *any* [`PdeProblem`] from the problem
//! registry — vector-valued outputs, derivative-valued conditions, and
//! arbitrary coordinate counts included. This is what makes a new PDE
//! family trainable by registering data instead of writing a task.

use crate::loss;
use crate::model::{CoordSpec, FieldNet, FieldNetConfig, RffSpec};
use crate::residual::split_fields;
use crate::trainer::PinnTask;
use qpinn_autodiff::Var;
use qpinn_nn::{Activation, GraphCtx, ParamSet};
use qpinn_problems::zoo::{lookup, CoordKind, Fidelity, PdeProblem, RefSolution, UnknownProblem};
use qpinn_sampling::{latin_hypercube, Domain};
use qpinn_tensor::Tensor;
use rand::rngs::StdRng;

/// Configuration of a [`ZooTask`].
#[derive(Clone, Debug)]
pub struct ZooTaskConfig {
    /// Hidden width of the MLP trunk.
    pub width: usize,
    /// Hidden depth.
    pub depth: usize,
    /// Random-Fourier-feature layer on/off.
    pub rff: bool,
    /// Number of interior collocation points (Latin hypercube).
    pub n_collocation: usize,
    /// Points per IC/BC condition set.
    pub n_condition: usize,
    /// Weight of each condition term relative to the PDE residual.
    pub cond_weight: f64,
    /// Reference resolution.
    pub fidelity: Fidelity,
    /// Budget of reference-evaluation points for the L2 metric
    /// (distributed as a tensor grid over the coordinates).
    pub eval_budget: usize,
}

impl ZooTaskConfig {
    /// Bench-grade defaults.
    pub fn standard() -> Self {
        ZooTaskConfig {
            width: 48,
            depth: 3,
            rff: true,
            n_collocation: 2048,
            n_condition: 256,
            cond_weight: 10.0,
            fidelity: Fidelity::Full,
            eval_budget: 4096,
        }
    }

    /// Small and fast for smoke tests and CI.
    pub fn quick() -> Self {
        ZooTaskConfig {
            width: 16,
            depth: 2,
            rff: false,
            n_collocation: 128,
            n_condition: 48,
            cond_weight: 10.0,
            fidelity: Fidelity::Quick,
            eval_budget: 512,
        }
    }
}

/// Map a problem's coordinate metadata to a [`FieldNetConfig`].
pub fn net_config_for(problem: &dyn PdeProblem, cfg: &ZooTaskConfig) -> FieldNetConfig {
    let coords = problem
        .coords()
        .iter()
        .map(|c| match c.kind {
            CoordKind::Periodic => CoordSpec::Periodic { length: c.span() },
            CoordKind::Bounded => CoordSpec::Raw,
            CoordKind::Time => CoordSpec::LearnedPeriod {
                period0: 4.0 * c.span(),
            },
        })
        .collect();
    FieldNetConfig {
        coords,
        rff: cfg.rff.then_some(RffSpec {
            n_features: 32,
            sigma: 1.0,
        }),
        hidden: vec![cfg.width; cfg.depth],
        n_fields: problem.n_outputs(),
        activation: Activation::Tanh,
    }
}

struct PreparedCondition {
    name: &'static str,
    deriv: Option<usize>,
    cols: Vec<Tensor>,
    target: Tensor,
}

/// A registry problem assembled into a trainable task.
pub struct ZooTask {
    problem: Box<dyn PdeProblem>,
    net: FieldNet,
    points: Vec<Vec<f64>>,
    point_cols: Vec<Tensor>,
    conditions: Vec<PreparedCondition>,
    cond_weight: f64,
    reference: Box<dyn RefSolution>,
    eval_points: Vec<Vec<f64>>,
    eval_ref: Vec<f64>,
}

impl ZooTask {
    /// Assemble a task straight from a registry key.
    pub fn from_key(
        key: &str,
        cfg: &ZooTaskConfig,
        params: &mut ParamSet,
        rng: &mut StdRng,
    ) -> Result<Self, UnknownProblem> {
        Ok(ZooTask::new(lookup(key)?, cfg, params, rng))
    }

    /// Assemble a task from a boxed problem definition. Network parameters
    /// are registered into `params` under the problem key, so a serve-side
    /// spec rebuild with `name = key` replays the construction bit-exactly.
    pub fn new(
        problem: Box<dyn PdeProblem>,
        cfg: &ZooTaskConfig,
        params: &mut ParamSet,
        rng: &mut StdRng,
    ) -> Self {
        let net_cfg = net_config_for(problem.as_ref(), cfg);
        let net = FieldNet::new(params, rng, &net_cfg, problem.key());

        let coords = problem.coords();
        let ranges: Vec<(f64, f64)> = coords.iter().map(|c| (c.lo, c.hi)).collect();
        let domain = Domain::new(&ranges);
        let points = latin_hypercube(&domain, cfg.n_collocation, rng);
        let point_cols = columns_of(&points, coords.len());

        let conditions = problem
            .conditions(cfg.n_condition)
            .into_iter()
            .map(|c| {
                let n_out = problem.n_outputs();
                let flat: Vec<f64> = c.targets.iter().flatten().copied().collect();
                PreparedCondition {
                    name: c.name,
                    deriv: c.deriv,
                    cols: columns_of(&c.points, coords.len()),
                    target: Tensor::from_vec([c.points.len(), n_out], flat),
                }
            })
            .collect();

        let reference = problem.reference(cfg.fidelity);
        // Tensor evaluation grid: spread the budget evenly over the axes.
        let per_axis = (cfg.eval_budget as f64)
            .powf(1.0 / coords.len() as f64)
            .round()
            .max(5.0) as usize;
        let mut eval_points = vec![Vec::new()];
        for c in &coords {
            let n = per_axis;
            let denom = match c.kind {
                CoordKind::Periodic => n as f64,
                _ => (n - 1) as f64,
            };
            let axis: Vec<f64> = (0..n).map(|i| c.lo + c.span() * i as f64 / denom).collect();
            eval_points = eval_points
                .into_iter()
                .flat_map(|p| {
                    axis.iter().map(move |&v| {
                        let mut q = p.clone();
                        q.push(v);
                        q
                    })
                })
                .collect();
        }
        let eval_ref: Vec<f64> = eval_points
            .iter()
            .flat_map(|p| reference.sample(p))
            .collect();

        ZooTask {
            problem,
            net,
            points,
            point_cols,
            conditions,
            cond_weight: cfg.cond_weight,
            reference,
            eval_points,
            eval_ref,
        }
    }

    /// The problem definition.
    pub fn problem(&self) -> &dyn PdeProblem {
        self.problem.as_ref()
    }

    /// The surrogate network.
    pub fn net(&self) -> &FieldNet {
        &self.net
    }

    /// The reference solution the error metric is scored against.
    pub fn reference(&self) -> &dyn RefSolution {
        self.reference.as_ref()
    }
}

fn columns_of(points: &[Vec<f64>], n_coords: usize) -> Vec<Tensor> {
    (0..n_coords)
        .map(|c| Tensor::column(&points.iter().map(|p| p[c]).collect::<Vec<_>>()))
        .collect()
}

impl PinnTask for ZooTask {
    fn build_loss(&mut self, ctx: &mut GraphCtx<'_>) -> Var {
        let cols: Vec<Var> = {
            let _span = qpinn_telemetry::span("sample");
            qpinn_telemetry::counter("train.collocation_points").add(self.points.len() as u64);
            self.point_cols
                .iter()
                .map(|t| ctx.g.constant(t.clone()))
                .collect()
        };
        let fields = {
            let _span = qpinn_telemetry::span("forward");
            let out = self.net.forward_jet(ctx, &cols);
            split_fields(ctx.g, &out, self.net.n_fields())
        };
        let residual_span = qpinn_telemetry::span("residual");
        let residuals = self
            .problem
            .residuals(ctx.g, &fields, &self.points);
        let mut lpde = loss::residual_mse(ctx.g, residuals[0], None);
        for &r in &residuals[1..] {
            let l = loss::residual_mse(ctx.g, r, None);
            lpde = ctx.g.add(lpde, l);
        }
        drop(residual_span);

        let mut terms = vec![(1.0, lpde)];
        let mut components = vec![("pde", lpde)];
        for cond in &self.conditions {
            let ccols: Vec<Var> = cond
                .cols
                .iter()
                .map(|t| ctx.g.constant(t.clone()))
                .collect();
            let l = match cond.deriv {
                None => loss::ic_loss(ctx, &self.net, &ccols, &cond.target),
                Some(c) => {
                    // Derivative-valued condition (e.g. initial velocity):
                    // constrain ∂(fields)/∂coord_c at the condition points.
                    let jet = self.net.forward_jet(ctx, &ccols);
                    let tgt = ctx.g.constant(cond.target.clone());
                    let diff = ctx.g.sub(jet.d[c], tgt);
                    ctx.g.mse(diff)
                }
            };
            terms.push((self.cond_weight, l));
            components.push((cond.name, l));
        }
        loss::publish_components(ctx.g, &components);
        loss::total_loss(ctx.g, &terms)
    }

    fn eval_error(&self, params: &ParamSet) -> f64 {
        let pred = self.net.predict(params, &self.eval_points);
        let mut num = 0.0;
        let mut den = 0.0;
        for (p, r) in pred.data().iter().zip(&self.eval_ref) {
            num += (p - r) * (p - r);
            den += r * r;
        }
        if den == 0.0 {
            num.sqrt()
        } else {
            (num / den).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn gray_scott_task_is_vector_valued_and_finite() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mut task =
            ZooTask::from_key("gray-scott", &ZooTaskConfig::quick(), &mut params, &mut rng)
                .unwrap();
        assert_eq!(task.net().n_fields(), 2);
        let mut g = qpinn_autodiff::Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let l = task.build_loss(&mut ctx);
        assert!(g.value(l).item().is_finite());
    }

    #[test]
    fn wave_task_includes_velocity_condition_gradients() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(8);
        let mut task = ZooTask::from_key("wave", &ZooTaskConfig::quick(), &mut params, &mut rng)
            .unwrap();
        let mut g = qpinn_autodiff::Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let l = task.build_loss(&mut ctx);
        let mut grads = ctx.g.backward(l);
        let collected = ctx.collect_grads(&mut grads);
        let nonzero = collected.iter().filter(|t| t.max_abs() > 0.0).count();
        assert!(
            nonzero >= collected.len() - 1,
            "{nonzero}/{} params got gradients",
            collected.len()
        );
    }

    #[test]
    fn from_key_propagates_unknown_problem() {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(9);
        assert!(
            ZooTask::from_key("not-a-pde", &ZooTaskConfig::quick(), &mut params, &mut rng)
                .is_err()
        );
    }
}
