//! Ready-to-train task objects, one per benchmark family. Each task owns
//! its collocation points, curriculum state, loss weights, and reference
//! solution, and implements [`crate::trainer::PinnTask`].

pub mod eigen;
pub mod inverse;
pub mod nls;
pub mod tdse;
pub mod tdse2d;
pub mod zoo;

pub use eigen::{EigenTask, EigenTaskConfig};
pub use inverse::{InverseTaskConfig, InverseTdseTask};
pub use nls::{NlsTask, NlsTaskConfig};
pub use tdse::{TdseTask, TdseTaskConfig};
pub use tdse2d::{Tdse2dTask, Tdse2dTaskConfig};
pub use zoo::{net_config_for, ZooTask, ZooTaskConfig};

/// Loss-term weights shared by the wave tasks (the `λ` multipliers of the
/// total loss `L = L_pde + λ_ic·L_ic + λ_cons·L_cons`).
#[derive(Clone, Copy, Debug)]
pub struct LossWeights {
    /// Initial-condition weight.
    pub ic: f64,
    /// Norm-conservation weight (0 disables the term).
    pub conservation: f64,
}

impl Default for LossWeights {
    fn default() -> Self {
        LossWeights {
            ic: 10.0,
            conservation: 10.0,
        }
    }
}
