//! The stationary eigenproblem task: learn `(ψ, E)` jointly from the
//! residual `−½ψ″ + Vψ − Eψ`, with normalization, boundary-decay, and
//! orthogonality losses; excited states are found by deflation against
//! already-trained states.

use crate::metrics;
use crate::model::{FieldNet, FieldNetConfig};
use crate::residual::eigen_residual;
use crate::trainer::PinnTask;
use qpinn_autodiff::Var;
use qpinn_nn::{Activation, GraphCtx, ParamId, ParamSet};
use qpinn_problems::EigenProblem;
use qpinn_solvers::BoundState;
use qpinn_tensor::Tensor;
use rand::rngs::StdRng;

/// Configuration of an [`EigenTask`].
#[derive(Clone, Debug)]
pub struct EigenTaskConfig {
    /// Hidden widths of the ψ-network.
    pub hidden: Vec<usize>,
    /// Number of collocation points (uniform grid over the box).
    pub n_collocation: usize,
    /// Initial guess for the eigenvalue.
    pub e0: f64,
    /// Weight of the normalization loss.
    pub w_norm: f64,
    /// Weight of the boundary loss.
    pub w_boundary: f64,
    /// Weight of each orthogonality term.
    pub w_ortho: f64,
    /// Reference grid size for the FD eigensolver.
    pub reference_nx: usize,
}

impl EigenTaskConfig {
    /// Defaults: 2×32 tanh net, 256 points.
    pub fn standard(e0: f64) -> Self {
        EigenTaskConfig {
            hidden: vec![32, 32],
            n_collocation: 256,
            e0,
            w_norm: 100.0,
            w_boundary: 100.0,
            w_ortho: 100.0,
            reference_nx: 1201,
        }
    }
}

/// A stationary Schrödinger eigen-task for one state.
pub struct EigenTask {
    problem: EigenProblem,
    net: FieldNet,
    e_param: ParamId,
    xs: Vec<f64>,
    potential_col: Tensor,
    /// Previously found states sampled at `xs` (deflation targets).
    prev_states: Vec<Tensor>,
    w_norm: f64,
    w_boundary: f64,
    w_ortho: f64,
    /// Residual weight ~ 1/(1+E₀²): balances the residual term (whose
    /// magnitude grows with the state energy) against the unit-scale
    /// normalization/boundary terms.
    res_scale: f64,
    /// Which eigenstate this task targets (index into the spectrum).
    state_index: usize,
    reference: Vec<BoundState>,
    reference_xs: Vec<f64>,
}

impl EigenTask {
    /// Build a task for the `state_index`-th state, deflating against the
    /// provided earlier solutions (each a `(params, task)` prediction on
    /// this task's grid is handled by the caller via
    /// [`EigenTask::predictions_on_grid`]).
    pub fn new(
        problem: EigenProblem,
        cfg: &EigenTaskConfig,
        state_index: usize,
        prev_states: Vec<Tensor>,
        params: &mut ParamSet,
        rng: &mut StdRng,
    ) -> Self {
        let net = FieldNet::new(
            params,
            rng,
            &FieldNetConfig {
                coords: vec![crate::model::CoordSpec::Raw],
                rff: None,
                hidden: cfg.hidden.clone(),
                n_fields: 1,
                activation: Activation::Tanh,
            },
            &format!("eigen{state_index}"),
        );
        let e_param = params.add(
            format!("eigen{state_index}.E"),
            Tensor::from_vec([1, 1], vec![cfg.e0]),
        );
        let n = cfg.n_collocation;
        let l = problem.x1 - problem.x0;
        let xs: Vec<f64> = (0..n)
            .map(|i| problem.x0 + l * (i as f64 + 0.5) / n as f64)
            .collect();
        let potential_col = Tensor::column(
            &xs.iter()
                .map(|&x| problem.potential.eval(x))
                .collect::<Vec<_>>(),
        );
        let grid = problem.grid(cfg.reference_nx);
        let reference = problem.reference(cfg.reference_nx);
        let reference_xs = grid.points();
        EigenTask {
            problem,
            net,
            e_param,
            xs,
            potential_col,
            prev_states,
            w_norm: cfg.w_norm,
            w_boundary: cfg.w_boundary,
            w_ortho: cfg.w_ortho,
            res_scale: 1.0 / (1.0 + cfg.e0 * cfg.e0),
            state_index,
            reference,
            reference_xs,
        }
    }

    /// The ψ-network (for prediction/inspection).
    pub fn net(&self) -> &FieldNet {
        &self.net
    }

    /// The learned eigenvalue (the trainable parameter).
    pub fn energy(&self, params: &ParamSet) -> f64 {
        params.get(self.e_param).item()
    }

    /// Variational re-estimate of the energy from the learned ψ via the
    /// Rayleigh quotient on a dense grid (finite-difference ψ′). Much less
    /// sensitive to residual-loss miscalibration than the raw trainable
    /// eigenvalue, so the tables report this value.
    pub fn rayleigh_energy(&self, params: &ParamSet) -> f64 {
        let n = 1024;
        let l = self.problem.x1 - self.problem.x0;
        let dx = l / n as f64;
        let xs: Vec<f64> = (0..=n).map(|i| self.problem.x0 + dx * i as f64).collect();
        let pts: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let pred = self.net.predict(params, &pts);
        let psi: Vec<f64> = (0..=n).map(|i| pred.get(&[i, 0])).collect();
        let mut num = 0.0;
        let mut den = 0.0;
        for i in 0..=n {
            let dpsi = if i == 0 {
                (psi[1] - psi[0]) / dx
            } else if i == n {
                (psi[n] - psi[n - 1]) / dx
            } else {
                (psi[i + 1] - psi[i - 1]) / (2.0 * dx)
            };
            let w = if i == 0 || i == n { 0.5 } else { 1.0 };
            num += w * (0.5 * dpsi * dpsi + self.problem.potential.eval(xs[i]) * psi[i] * psi[i]);
            den += w * psi[i] * psi[i];
        }
        num / den.max(1e-300)
    }

    /// ψ sampled on this task's collocation grid (for deflation of the
    /// next state).
    pub fn predictions_on_grid(&self, params: &ParamSet) -> Tensor {
        let pts: Vec<Vec<f64>> = self.xs.iter().map(|&x| vec![x]).collect();
        self.net.predict(params, &pts)
    }

    /// The collocation abscissae.
    pub fn grid_xs(&self) -> &[f64] {
        &self.xs
    }

    /// Reference energy of the targeted state.
    pub fn reference_energy(&self) -> f64 {
        self.reference[self.state_index].energy
    }

    /// Profile error of the learned ψ against the FD reference (sign
    /// invariant, both normalized).
    pub fn profile_error(&self, params: &ParamSet) -> f64 {
        let pts: Vec<Vec<f64>> = self.reference_xs.iter().map(|&x| vec![x]).collect();
        let raw = self.net.predict(params, &pts);
        // normalize the prediction with trapezoid weights before comparing
        let l = self.problem.x1 - self.problem.x0;
        let dx = l / (self.reference_xs.len() - 1) as f64;
        let vals: Vec<f64> = (0..self.reference_xs.len())
            .map(|i| raw.get(&[i, 0]))
            .collect();
        let norm: f64 = {
            let mut s = 0.0;
            for i in 0..vals.len() {
                let w = if i == 0 || i == vals.len() - 1 {
                    0.5
                } else {
                    1.0
                };
                s += w * vals[i] * vals[i];
            }
            (s * dx).sqrt()
        };
        let scaled: Vec<f64> = vals.iter().map(|v| v / norm.max(1e-300)).collect();
        metrics::rel_l2_error_profile(&scaled, &self.reference[self.state_index].psi)
    }
}

impl PinnTask for EigenTask {
    fn build_loss(&mut self, ctx: &mut GraphCtx<'_>) -> Var {
        let l = self.problem.x1 - self.problem.x0;
        let xcol = ctx.g.constant(Tensor::column(&self.xs));
        let out = self.net.forward_jet(ctx, &[xcol]);
        let psi = out.col(ctx.g, 0);
        let vpot = ctx.g.constant(self.potential_col.clone());
        let e = ctx.param(self.e_param);
        let r = eigen_residual(ctx.g, &psi, vpot, e);
        let lres = ctx.g.mse(r);

        // normalization: L·⟨ψ²⟩ = 1
        let psi2 = ctx.g.square(psi.v);
        let mean = ctx.g.mean(psi2);
        let norm = ctx.g.scale(mean, l);
        let drift = ctx.g.add_scalar(norm, -1.0);
        let lnorm = ctx.g.square(drift);
        let lnorm = ctx.g.sum(lnorm);

        // boundary decay at the box edges
        let bx = ctx
            .g
            .constant(Tensor::column(&[self.problem.x0, self.problem.x1]));
        let bout = self.net.forward_values(ctx, &[bx]);
        let lbnd = ctx.g.mse(bout);

        let mut terms = vec![
            (self.res_scale, lres),
            (self.w_norm, lnorm),
            (self.w_boundary, lbnd),
        ];

        // orthogonality to earlier states: (L·⟨ψ·ψ_k⟩)²
        for prev in &self.prev_states {
            let pk = ctx.g.constant(prev.clone());
            let prod = ctx.g.mul(psi.v, pk);
            let mean = ctx.g.mean(prod);
            let overlap = ctx.g.scale(mean, l);
            let sq = ctx.g.square(overlap);
            let sq = ctx.g.sum(sq);
            terms.push((self.w_ortho, sq));
        }
        crate::loss::total_loss(ctx.g, &terms)
    }

    fn eval_error(&self, params: &ParamSet) -> f64 {
        (self.rayleigh_energy(params) - self.reference_energy()).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{TrainConfig, Trainer};
    use qpinn_optim::LrSchedule;
    use rand::SeedableRng;

    #[test]
    fn ground_state_of_harmonic_oscillator_converges() {
        let problem = EigenProblem::harmonic(1.0);
        let mut cfg = EigenTaskConfig::standard(0.4);
        cfg.n_collocation = 128;
        cfg.hidden = vec![24, 24];
        cfg.reference_nx = 401;
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(7);
        let mut task = EigenTask::new(problem, &cfg, 0, Vec::new(), &mut params, &mut rng);
        let trainer = Trainer::new(TrainConfig {
            epochs: 1500,
            schedule: LrSchedule::Step {
                lr0: 5e-3,
                factor: 0.7,
                every: 500,
            },
            log_every: 500,
            eval_every: 0,
            clip: Some(100.0),
            lbfgs_polish: Some(80),
            checkpoint: None,
            divergence: None,
            progress: None,
            run: None,
        });
        let _log = trainer.train(&mut task, &mut params);
        let e = task.energy(&params);
        assert!((e - 0.5).abs() < 0.05, "ground-state energy {e} (want 0.5)");
    }

    #[test]
    fn loss_penalizes_zero_solution() {
        // With all-zero network output the normalization loss alone is
        // w_norm·1 — the trivial solution is not a minimum.
        let problem = EigenProblem::infinite_well();
        let cfg = EigenTaskConfig::standard(4.0);
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut task = EigenTask::new(problem, &cfg, 0, Vec::new(), &mut params, &mut rng);
        // zero all parameters → ψ ≡ 0
        for t in params.tensors_mut() {
            for v in t.data_mut() {
                *v = 0.0;
            }
        }
        let mut g = qpinn_autodiff::Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let l = task.build_loss(&mut ctx);
        assert!(
            g.value(l).item() >= cfg.w_norm * 0.99,
            "trivial solution must be expensive: {}",
            g.value(l).item()
        );
    }

    #[test]
    fn orthogonality_term_reacts_to_overlap() {
        let problem = EigenProblem::infinite_well();
        let cfg = EigenTaskConfig::standard(4.0);
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(2);
        // deflate against a constant "state" that any nonzero symmetric ψ
        // overlaps with
        let n = cfg.n_collocation;
        let prev = Tensor::column(&vec![1.0; n]);
        let mut task_o =
            EigenTask::new(problem.clone(), &cfg, 1, vec![prev], &mut params, &mut rng);
        let mut g = qpinn_autodiff::Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let with_ortho = {
            let l = task_o.build_loss(&mut ctx);
            g.value(l).item()
        };
        assert!(with_ortho.is_finite());
        // same parameters without deflation must give a strictly smaller
        // loss whenever the overlap is nonzero
        let mut params2 = ParamSet::new();
        let mut rng2 = StdRng::seed_from_u64(2);
        let mut task_p = EigenTask::new(problem, &cfg, 0, Vec::new(), &mut params2, &mut rng2);
        let mut g2 = qpinn_autodiff::Graph::new();
        let mut ctx2 = GraphCtx::new(&mut g2, &params2);
        let without = {
            let l = task_p.build_loss(&mut ctx2);
            g2.value(l).item()
        };
        assert!(with_ortho >= without, "{with_ortho} vs {without}");
    }
}
