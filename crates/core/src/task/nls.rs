//! The nonlinear Schrödinger training task (Raissi benchmark and
//! solitons).

use crate::causal::CausalWeights;
use crate::loss;
use crate::metrics;
use crate::model::{FieldNet, FieldNetConfig};
use crate::residual::{nls_residuals, split_complex};
use crate::task::LossWeights;
use crate::trainer::PinnTask;
use qpinn_autodiff::Var;
use qpinn_nn::{GraphCtx, ParamSet};
use qpinn_problems::NlsProblem;
use qpinn_sampling::{latin_hypercube, Domain};
use qpinn_solvers::Field1d;
use qpinn_tensor::Tensor;
use rand::rngs::StdRng;

/// Configuration of an [`NlsTask`].
#[derive(Clone, Debug)]
pub struct NlsTaskConfig {
    /// Network architecture.
    pub net: FieldNetConfig,
    /// Number of interior collocation points.
    pub n_collocation: usize,
    /// Number of initial-condition points.
    pub n_ic: usize,
    /// Loss weights.
    pub weights: LossWeights,
    /// Causal weighting `(bins, epsilon)`.
    pub causal: Option<(usize, f64)>,
    /// Conservation grid `(n_times, n_x)`.
    pub conservation_grid: (usize, usize),
    /// Reference resolution `(nx, nt_steps, slices)`.
    pub reference: (usize, usize, usize),
    /// Evaluation grid `(nx, nt)`.
    pub eval_grid: (usize, usize),
}

impl NlsTaskConfig {
    /// Defaults mirroring the TDSE task.
    pub fn standard(problem: &NlsProblem, width: usize, depth: usize) -> Self {
        NlsTaskConfig {
            net: FieldNetConfig::standard_wave(problem.length(), problem.t_end, width, depth),
            n_collocation: 4096,
            n_ic: 256,
            weights: LossWeights::default(),
            causal: Some((5, 1.0)),
            conservation_grid: (8, 64),
            reference: (256, 2000, 64),
            eval_grid: (128, 64),
        }
    }
}

/// A fully assembled NLS PINN task.
pub struct NlsTask {
    problem: NlsProblem,
    net: FieldNet,
    xs: Vec<f64>,
    ts: Vec<f64>,
    ic_cols: (Tensor, Tensor),
    ic_target: Tensor,
    cons: Option<(Tensor, Tensor, usize, f64)>,
    causal: Option<CausalWeights>,
    weights: LossWeights,
    reference: Field1d,
    eval_grid: (usize, usize),
}

impl NlsTask {
    /// Assemble the task (registers parameters, samples collocation,
    /// computes the spectral reference).
    pub fn new(
        problem: NlsProblem,
        cfg: &NlsTaskConfig,
        params: &mut ParamSet,
        rng: &mut StdRng,
    ) -> Self {
        let net = FieldNet::new(params, rng, &cfg.net, "nls");
        let domain = Domain::new(&[(problem.x0, problem.x1), (0.0, problem.t_end)]);
        let pts = latin_hypercube(&domain, cfg.n_collocation, rng);
        let xs: Vec<f64> = pts.iter().map(|p| p[0]).collect();
        let ts: Vec<f64> = pts.iter().map(|p| p[1]).collect();

        let ic_x: Vec<f64> = (0..cfg.n_ic)
            .map(|i| problem.x0 + problem.length() * i as f64 / cfg.n_ic as f64)
            .collect();
        let mut target = Vec::with_capacity(cfg.n_ic * 2);
        for &x in &ic_x {
            let h = problem.initial(x);
            target.push(h.re);
            target.push(h.im);
        }
        let ic_cols = (Tensor::column(&ic_x), Tensor::column(&vec![0.0; cfg.n_ic]));
        let ic_target = Tensor::from_vec([cfg.n_ic, 2], target);

        let cons = if cfg.weights.conservation > 0.0 {
            let (ntc, nxc) = cfg.conservation_grid;
            let mut cx = Vec::with_capacity(ntc * nxc);
            let mut ct = Vec::with_capacity(ntc * nxc);
            for k in 0..ntc {
                let t = problem.t_end * (k + 1) as f64 / ntc as f64;
                for i in 0..nxc {
                    ct.push(t);
                    cx.push(problem.x0 + problem.length() * i as f64 / nxc as f64);
                }
            }
            let nq = 2048;
            let dens_mean: f64 = (0..nq)
                .map(|i| {
                    let x = problem.x0 + problem.length() * i as f64 / nq as f64;
                    problem.initial(x).norm_sqr()
                })
                .sum::<f64>()
                / nq as f64;
            let n0 = dens_mean * problem.length();
            Some((Tensor::column(&cx), Tensor::column(&ct), nxc, n0))
        } else {
            None
        };

        let causal = cfg
            .causal
            .map(|(m, eps)| CausalWeights::new(0.0, problem.t_end, m, eps, &ts));
        let (rnx, rnt, rsl) = cfg.reference;
        let reference = problem.reference(rnx, rnt, rsl);

        NlsTask {
            problem,
            net,
            xs,
            ts,
            ic_cols,
            ic_target,
            cons,
            causal,
            weights: cfg.weights,
            reference,
            eval_grid: cfg.eval_grid,
        }
    }

    /// The underlying problem.
    pub fn problem(&self) -> &NlsProblem {
        &self.problem
    }

    /// The network.
    pub fn net(&self) -> &FieldNet {
        &self.net
    }

    /// The reference field.
    pub fn reference(&self) -> &Field1d {
        &self.reference
    }
}

impl PinnTask for NlsTask {
    fn build_loss(&mut self, ctx: &mut GraphCtx<'_>) -> Var {
        let (xcol, tcol) = {
            let _span = qpinn_telemetry::span("sample");
            qpinn_telemetry::counter("train.collocation_points").add(self.xs.len() as u64);
            let xcol = ctx.g.constant(Tensor::column(&self.xs));
            let tcol = ctx.g.constant(Tensor::column(&self.ts));
            (xcol, tcol)
        };
        let psi = {
            let _span = qpinn_telemetry::span("forward");
            let out = self.net.forward_jet(ctx, &[xcol, tcol]);
            split_complex(ctx.g, &out)
        };
        let residual_span = qpinn_telemetry::span("residual");
        let (ru, rv) = nls_residuals(ctx.g, &psi, self.problem.g);

        let wvar = match &mut self.causal {
            Some(cw) => {
                let r2: Vec<f64> = ctx
                    .g
                    .value(ru)
                    .data()
                    .iter()
                    .zip(ctx.g.value(rv).data())
                    .map(|(a, b)| a * a + b * b)
                    .collect();
                cw.update(&r2);
                Some(ctx.g.constant(Tensor::column(&cw.point_weights())))
            }
            None => None,
        };
        let lu = loss::residual_mse(ctx.g, ru, wvar);
        let lv = loss::residual_mse(ctx.g, rv, wvar);
        let lpde = ctx.g.add(lu, lv);
        drop(residual_span);

        let icx = ctx.g.constant(self.ic_cols.0.clone());
        let ict = ctx.g.constant(self.ic_cols.1.clone());
        let lic = loss::ic_loss(ctx, &self.net, &[icx, ict], &self.ic_target);

        let mut terms = vec![(1.0, lpde), (self.weights.ic, lic)];
        if let Some((cx, ct, nxc, n0)) = &self.cons {
            let cxv = ctx.g.constant(cx.clone());
            let ctv = ctx.g.constant(ct.clone());
            let lcons = loss::norm_conservation_loss(
                ctx,
                &self.net,
                &[cxv, ctv],
                *nxc,
                self.problem.length(),
                *n0,
            );
            terms.push((self.weights.conservation, lcons));
            loss::publish_components(
                ctx.g,
                &[("pde", lpde), ("ic", lic), ("conservation", lcons)],
            );
        } else {
            loss::publish_components(ctx.g, &[("pde", lpde), ("ic", lic)]);
        }
        loss::total_loss(ctx.g, &terms)
    }

    fn eval_error(&self, params: &ParamSet) -> f64 {
        metrics::rel_l2_error_field(
            &self.net,
            params,
            &self.reference,
            self.eval_grid.0,
            self.eval_grid.1,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_cfg(problem: &NlsProblem) -> NlsTaskConfig {
        let mut cfg = NlsTaskConfig::standard(problem, 16, 2);
        cfg.n_collocation = 128;
        cfg.n_ic = 32;
        cfg.conservation_grid = (3, 16);
        cfg.reference = (128, 400, 16);
        cfg.eval_grid = (32, 8);
        cfg
    }

    #[test]
    fn loss_and_gradients_are_finite() {
        let problem = NlsProblem::raissi_benchmark();
        let cfg = tiny_cfg(&problem);
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut task = NlsTask::new(problem, &cfg, &mut params, &mut rng);
        let mut g = qpinn_autodiff::Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let l = task.build_loss(&mut ctx);
        assert!(ctx.g.value(l).item().is_finite());
        let mut grads = ctx.g.backward(l);
        let collected = ctx.collect_grads(&mut grads);
        assert!(collected.iter().all(|t| t.all_finite()));
    }

    #[test]
    fn initial_error_is_order_one_and_training_reduces_loss() {
        use crate::trainer::{TrainConfig, Trainer};
        use qpinn_optim::LrSchedule;
        let problem = NlsProblem::raissi_benchmark();
        let cfg = tiny_cfg(&problem);
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(3);
        let mut task = NlsTask::new(problem, &cfg, &mut params, &mut rng);
        let e0 = task.eval_error(&params);
        assert!(e0 > 0.5, "untrained net should be far off: {e0}");
        let trainer = Trainer::new(TrainConfig {
            epochs: 60,
            schedule: LrSchedule::Constant { lr: 2e-3 },
            log_every: 20,
            eval_every: 0,
            clip: Some(100.0),
            lbfgs_polish: None,
            checkpoint: None,
            divergence: None,
            progress: None,
            run: None,
        });
        let log = trainer.train(&mut task, &mut params);
        assert!(log.final_loss < log.loss[0]);
    }
}
