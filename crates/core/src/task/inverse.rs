//! The inverse TDSE task: identify an unknown potential parameter (the
//! harmonic trap frequency ω) from sparse wavefunction observations, by
//! training `(ψ-network, ω)` jointly — the PINN inverse-problem
//! capability.

use crate::loss;
use crate::model::{FieldNet, FieldNetConfig};
use crate::residual::split_complex;
use crate::trainer::PinnTask;
use qpinn_autodiff::Var;
use qpinn_nn::{GraphCtx, ParamId, ParamSet};
use qpinn_problems::{Potential, TdseProblem};
use qpinn_sampling::{latin_hypercube, uniform_points, Domain};
use qpinn_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Configuration of an [`InverseTdseTask`].
#[derive(Clone, Debug)]
pub struct InverseTaskConfig {
    /// Network architecture.
    pub net: FieldNetConfig,
    /// Number of interior collocation points.
    pub n_collocation: usize,
    /// Number of observation points sampled over space-time.
    pub n_observations: usize,
    /// Gaussian noise added to observations (standard deviation).
    pub noise: f64,
    /// Initial guess for ω.
    pub omega0: f64,
    /// Weight of the data-fit loss.
    pub w_data: f64,
    /// Reference resolution `(nx, nt_steps, slices)` used to generate the
    /// synthetic observations.
    pub reference: (usize, usize, usize),
}

impl InverseTaskConfig {
    /// Defaults for the harmonic-trap identification benchmark.
    pub fn standard(problem: &TdseProblem, width: usize, depth: usize) -> Self {
        InverseTaskConfig {
            net: FieldNetConfig::standard_wave(problem.length(), problem.t_end, width, depth),
            n_collocation: 1024,
            n_observations: 256,
            noise: 0.0,
            omega0: 1.0,
            w_data: 20.0,
            reference: (256, 800, 64),
        }
    }
}

/// Joint `(ψ, ω)` inverse problem on a harmonic-trap TDSE.
pub struct InverseTdseTask {
    problem: TdseProblem,
    true_omega: f64,
    net: FieldNet,
    omega: ParamId,
    xs: Vec<f64>,
    ts: Vec<f64>,
    x2_col: Tensor,
    obs_cols: (Tensor, Tensor),
    obs_target: Tensor,
    ic_cols: (Tensor, Tensor),
    ic_target: Tensor,
    w_data: f64,
}

impl InverseTdseTask {
    /// Build the task: the `problem` must use a harmonic potential (its ω
    /// is the hidden ground truth the observations are generated from).
    ///
    /// # Panics
    /// Panics for non-harmonic problems.
    pub fn new(
        problem: TdseProblem,
        cfg: &InverseTaskConfig,
        params: &mut ParamSet,
        rng: &mut StdRng,
    ) -> Self {
        let true_omega = match problem.potential {
            Potential::Harmonic { omega } => omega,
            _ => panic!("inverse task requires a harmonic potential"),
        };
        let net = FieldNet::new(params, rng, &cfg.net, "inverse");
        let omega = params.add("inverse.omega", Tensor::from_vec([1, 1], vec![cfg.omega0]));

        let domain = Domain::new(&[(problem.x0, problem.x1), (0.0, problem.t_end)]);
        let pts = latin_hypercube(&domain, cfg.n_collocation, rng);
        let xs: Vec<f64> = pts.iter().map(|p| p[0]).collect();
        let ts: Vec<f64> = pts.iter().map(|p| p[1]).collect();
        let x2_col = Tensor::column(&xs.iter().map(|&x| x * x).collect::<Vec<_>>());

        // synthetic observations from the reference solver (true ω)
        let (rnx, rnt, rsl) = cfg.reference;
        let reference = problem.reference(rnx, rnt, rsl);
        let obs_pts = uniform_points(&domain, cfg.n_observations, rng);
        let mut ox = Vec::with_capacity(cfg.n_observations);
        let mut ot = Vec::with_capacity(cfg.n_observations);
        let mut target = Vec::with_capacity(cfg.n_observations * 2);
        for p in &obs_pts {
            ox.push(p[0]);
            ot.push(p[1]);
            let psi = reference.sample(p[0], p[1]);
            let (nu, nv) = if cfg.noise > 0.0 {
                (
                    cfg.noise * rng.gen_range(-1.0..1.0f64),
                    cfg.noise * rng.gen_range(-1.0..1.0f64),
                )
            } else {
                (0.0, 0.0)
            };
            target.push(psi.re + nu);
            target.push(psi.im + nv);
        }
        let obs_cols = (Tensor::column(&ox), Tensor::column(&ot));
        let obs_target = Tensor::from_vec([cfg.n_observations, 2], target);

        // initial condition (known exactly in this benchmark)
        let n_ic = 128;
        let ic_x: Vec<f64> = (0..n_ic)
            .map(|i| problem.x0 + problem.length() * i as f64 / n_ic as f64)
            .collect();
        let mut ic_target = Vec::with_capacity(n_ic * 2);
        for &x in &ic_x {
            let psi = problem.initial(x);
            ic_target.push(psi.re);
            ic_target.push(psi.im);
        }
        let ic_cols = (Tensor::column(&ic_x), Tensor::column(&vec![0.0; n_ic]));
        let ic_target = Tensor::from_vec([n_ic, 2], ic_target);

        InverseTdseTask {
            problem,
            true_omega,
            net,
            omega,
            xs,
            ts,
            x2_col,
            obs_cols,
            obs_target,
            ic_cols,
            ic_target,
            w_data: cfg.w_data,
        }
    }

    /// The current ω estimate.
    pub fn omega(&self, params: &ParamSet) -> f64 {
        params.get(self.omega).item().abs()
    }

    /// The hidden ground-truth ω.
    pub fn true_omega(&self) -> f64 {
        self.true_omega
    }

    /// The ψ-network.
    pub fn net(&self) -> &FieldNet {
        &self.net
    }

    /// The underlying (ground-truth) problem definition.
    pub fn problem(&self) -> &TdseProblem {
        &self.problem
    }
}

impl PinnTask for InverseTdseTask {
    fn build_loss(&mut self, ctx: &mut GraphCtx<'_>) -> Var {
        // PDE residual with the trainable potential V = ½ω²x².
        let xcol = ctx.g.constant(Tensor::column(&self.xs));
        let tcol = ctx.g.constant(Tensor::column(&self.ts));
        let out = self.net.forward_jet(ctx, &[xcol, tcol]);
        let psi = split_complex(ctx.g, &out);
        let omega = ctx.param(self.omega);
        let omega_sq = ctx.g.square(omega);
        let x2 = ctx.g.constant(self.x2_col.clone());
        let vraw = ctx.g.matmul(x2, omega_sq);
        let vpot = ctx.g.scale(vraw, 0.5);
        let (ru, rv) = crate::residual::tdse_residuals(ctx.g, &psi, vpot);
        let lu = ctx.g.mse(ru);
        let lv = ctx.g.mse(rv);
        let lpde = ctx.g.add(lu, lv);

        // data fit on the observations
        let ox = ctx.g.constant(self.obs_cols.0.clone());
        let ot = ctx.g.constant(self.obs_cols.1.clone());
        let ldata = loss::ic_loss(ctx, &self.net, &[ox, ot], &self.obs_target);

        // exact initial condition
        let icx = ctx.g.constant(self.ic_cols.0.clone());
        let ict = ctx.g.constant(self.ic_cols.1.clone());
        let lic = loss::ic_loss(ctx, &self.net, &[icx, ict], &self.ic_target);

        loss::publish_components(ctx.g, &[("pde", lpde), ("data", ldata), ("ic", lic)]);
        loss::total_loss(ctx.g, &[(1.0, lpde), (self.w_data, ldata), (10.0, lic)])
    }

    fn eval_error(&self, params: &ParamSet) -> f64 {
        (self.omega(params) - self.true_omega).abs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trainer::{TrainConfig, Trainer};
    use qpinn_optim::LrSchedule;
    use rand::SeedableRng;

    fn harmonic_problem() -> TdseProblem {
        TdseProblem::mild_harmonic() // ω = 1
    }

    fn tiny_cfg(problem: &TdseProblem) -> InverseTaskConfig {
        let mut cfg = InverseTaskConfig::standard(problem, 16, 2);
        cfg.n_collocation = 160;
        cfg.n_observations = 96;
        cfg.reference = (128, 300, 32);
        cfg
    }

    #[test]
    fn loss_builds_and_omega_receives_gradient() {
        let problem = harmonic_problem();
        let cfg = tiny_cfg(&problem);
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let mut task = InverseTdseTask::new(problem, &cfg, &mut params, &mut rng);
        let mut g = qpinn_autodiff::Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let l = task.build_loss(&mut ctx);
        assert!(ctx.g.value(l).item().is_finite());
        let mut grads = ctx.g.backward(l);
        let collected = ctx.collect_grads(&mut grads);
        // the ω parameter is the last registered one
        let omega_grad = collected.last().unwrap().max_abs();
        assert!(omega_grad.is_finite());
    }

    #[test]
    fn omega_moves_toward_truth_during_training() {
        let problem = harmonic_problem(); // true ω = 1
        let mut cfg = tiny_cfg(&problem);
        cfg.omega0 = 0.6;
        cfg.w_data = 50.0;
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut task = InverseTdseTask::new(problem, &cfg, &mut params, &mut rng);
        let e0 = task.eval_error(&params); // |0.6 − 1| = 0.4
        assert!((e0 - 0.4).abs() < 1e-12);
        // ω only becomes identifiable once ψ roughly fits the data, so the
        // error can rise briefly before the descent sets in — give it a
        // realistic budget.
        let _ = Trainer::new(TrainConfig {
            epochs: 900,
            schedule: LrSchedule::Constant { lr: 3e-3 },
            log_every: 300,
            eval_every: 0,
            clip: Some(100.0),
            lbfgs_polish: None,
            checkpoint: None,
            divergence: None,
            progress: None,
            run: None,
        })
        .train(&mut task, &mut params);
        let e1 = task.eval_error(&params);
        // The tiny unit-test budget only demonstrates the descent direction;
        // full identifiability (ω error < 0.1) is exercised by the T7
        // harness binary at realistic scale.
        assert!(e1 < e0 - 0.005, "ω error should shrink: {e0} → {e1}");
    }

    #[test]
    #[should_panic]
    fn rejects_non_harmonic_problems() {
        let problem = TdseProblem::free_packet();
        let cfg = InverseTaskConfig::standard(&problem, 8, 1);
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(2);
        let _ = InverseTdseTask::new(problem, &cfg, &mut params, &mut rng);
    }
}
