//! The 2D time-dependent Schrödinger training task — the
//! multi-dimensional unsteady extension. Coordinates are `(x, y, t)`;
//! both spatial axes use exact periodic embeddings.

use crate::loss;
use crate::model::{CoordSpec, FieldNet, FieldNetConfig, RffSpec};
use crate::residual::{split_complex, tdse2d_residuals};
use crate::task::LossWeights;
use crate::trainer::PinnTask;
use qpinn_autodiff::Var;
use qpinn_nn::{Activation, GraphCtx, ParamSet};
use qpinn_problems::Tdse2dProblem;
use qpinn_sampling::{latin_hypercube, Domain};
use qpinn_solvers::Field2d;
use qpinn_tensor::Tensor;
use rand::rngs::StdRng;

/// Configuration of a [`Tdse2dTask`].
#[derive(Clone, Debug)]
pub struct Tdse2dTaskConfig {
    /// Hidden width of the trunk.
    pub width: usize,
    /// Hidden depth of the trunk.
    pub depth: usize,
    /// RFF frequencies (0 disables the embedding).
    pub rff_features: usize,
    /// Number of interior collocation points.
    pub n_collocation: usize,
    /// Number of initial-condition points (grid ≈ √n per axis).
    pub n_ic_side: usize,
    /// Loss weights.
    pub weights: LossWeights,
    /// Conservation grid `(n_times, n_side)`.
    pub conservation_grid: (usize, usize),
    /// Reference resolution `(n_side, nt_steps, slices)`.
    pub reference: (usize, usize, usize),
    /// Evaluation grid `(n_side, nt)`.
    pub eval_grid: (usize, usize),
}

impl Tdse2dTaskConfig {
    /// Defaults sized for a demonstration run.
    pub fn standard(width: usize, depth: usize) -> Self {
        Tdse2dTaskConfig {
            width,
            depth,
            rff_features: 48,
            n_collocation: 2048,
            n_ic_side: 16,
            weights: LossWeights::default(),
            conservation_grid: (4, 16),
            reference: (64, 300, 16),
            eval_grid: (24, 8),
        }
    }
}

/// A fully assembled 2D TDSE PINN task.
pub struct Tdse2dTask {
    problem: Tdse2dProblem,
    net: FieldNet,
    cols: (Tensor, Tensor, Tensor),
    potential_col: Tensor,
    ic_cols: (Tensor, Tensor, Tensor),
    ic_target: Tensor,
    cons: Option<(Tensor, Tensor, Tensor, usize, f64)>,
    weights: LossWeights,
    reference: Field2d,
    eval_grid: (usize, usize),
}

impl Tdse2dTask {
    /// Assemble the task.
    pub fn new(
        problem: Tdse2dProblem,
        cfg: &Tdse2dTaskConfig,
        params: &mut ParamSet,
        rng: &mut StdRng,
    ) -> Self {
        let (lx, ly) = problem.lengths();
        let net = FieldNet::new(
            params,
            rng,
            &FieldNetConfig {
                coords: vec![
                    CoordSpec::Periodic { length: lx },
                    CoordSpec::Periodic { length: ly },
                    CoordSpec::LearnedPeriod {
                        period0: 4.0 * problem.t_end,
                    },
                ],
                rff: if cfg.rff_features > 0 {
                    Some(RffSpec {
                        n_features: cfg.rff_features,
                        sigma: 1.0,
                    })
                } else {
                    None
                },
                hidden: vec![cfg.width; cfg.depth],
                n_fields: 2,
                activation: Activation::Tanh,
            },
            "tdse2d",
        );

        let domain = Domain::new(&[problem.x, problem.y, (0.0, problem.t_end)]);
        let pts = latin_hypercube(&domain, cfg.n_collocation, rng);
        let xs: Vec<f64> = pts.iter().map(|p| p[0]).collect();
        let ys: Vec<f64> = pts.iter().map(|p| p[1]).collect();
        let ts: Vec<f64> = pts.iter().map(|p| p[2]).collect();
        let potential_col = Tensor::column(
            &xs.iter()
                .zip(&ys)
                .map(|(&x, &y)| problem.potential.eval(x, y))
                .collect::<Vec<_>>(),
        );

        // IC grid at t = 0.
        let side = cfg.n_ic_side;
        let mut icx = Vec::with_capacity(side * side);
        let mut icy = Vec::with_capacity(side * side);
        let mut target = Vec::with_capacity(side * side * 2);
        for i in 0..side {
            for j in 0..side {
                let x = problem.x.0 + lx * i as f64 / side as f64;
                let y = problem.y.0 + ly * j as f64 / side as f64;
                icx.push(x);
                icy.push(y);
                let psi = problem.initial(x, y);
                target.push(psi.re);
                target.push(psi.im);
            }
        }
        let n_ic = side * side;
        let ic_cols = (
            Tensor::column(&icx),
            Tensor::column(&icy),
            Tensor::column(&vec![0.0; n_ic]),
        );
        let ic_target = Tensor::from_vec([n_ic, 2], target);

        // Conservation grid: time-major over an n_side × n_side plane.
        let cons = if cfg.weights.conservation > 0.0 {
            let (ntc, nsc) = cfg.conservation_grid;
            let per_slice = nsc * nsc;
            let mut cx = Vec::with_capacity(ntc * per_slice);
            let mut cy = Vec::with_capacity(ntc * per_slice);
            let mut ct = Vec::with_capacity(ntc * per_slice);
            for k in 0..ntc {
                let t = problem.t_end * (k + 1) as f64 / ntc as f64;
                for i in 0..nsc {
                    for j in 0..nsc {
                        ct.push(t);
                        cx.push(problem.x.0 + lx * i as f64 / nsc as f64);
                        cy.push(problem.y.0 + ly * j as f64 / nsc as f64);
                    }
                }
            }
            Some((
                Tensor::column(&cx),
                Tensor::column(&cy),
                Tensor::column(&ct),
                per_slice,
                1.0, // the initial state is normalized
            ))
        } else {
            None
        };

        let (rside, rnt, rsl) = cfg.reference;
        let reference = problem.reference(rside, rside, rnt, rsl);
        Tdse2dTask {
            problem,
            net,
            cols: (
                Tensor::column(&xs),
                Tensor::column(&ys),
                Tensor::column(&ts),
            ),
            potential_col,
            ic_cols,
            ic_target,
            cons,
            weights: cfg.weights,
            reference,
            eval_grid: cfg.eval_grid,
        }
    }

    /// The network.
    pub fn net(&self) -> &FieldNet {
        &self.net
    }

    /// The underlying problem.
    pub fn problem(&self) -> &Tdse2dProblem {
        &self.problem
    }

    /// The spectral reference.
    pub fn reference(&self) -> &Field2d {
        &self.reference
    }
}

impl PinnTask for Tdse2dTask {
    fn build_loss(&mut self, ctx: &mut GraphCtx<'_>) -> Var {
        let xcol = ctx.g.constant(self.cols.0.clone());
        let ycol = ctx.g.constant(self.cols.1.clone());
        let tcol = ctx.g.constant(self.cols.2.clone());
        let out = self.net.forward_jet(ctx, &[xcol, ycol, tcol]);
        let psi = split_complex(ctx.g, &out);
        let vpot = ctx.g.constant(self.potential_col.clone());
        let (ru, rv) = tdse2d_residuals(ctx.g, &psi, vpot);
        let lu = ctx.g.mse(ru);
        let lv = ctx.g.mse(rv);
        let lpde = ctx.g.add(lu, lv);

        let icx = ctx.g.constant(self.ic_cols.0.clone());
        let icy = ctx.g.constant(self.ic_cols.1.clone());
        let ict = ctx.g.constant(self.ic_cols.2.clone());
        let lic = loss::ic_loss(ctx, &self.net, &[icx, icy, ict], &self.ic_target);

        let mut terms = vec![(1.0, lpde), (self.weights.ic, lic)];
        if let Some((cx, cy, ct, per_slice, n0)) = &self.cons {
            let cxv = ctx.g.constant(cx.clone());
            let cyv = ctx.g.constant(cy.clone());
            let ctv = ctx.g.constant(ct.clone());
            let (lx, ly) = self.problem.lengths();
            let pred = self.net.forward_values(ctx, &[cxv, cyv, ctv]);
            let u = ctx.g.col(pred, 0);
            let v = ctx.g.col(pred, 1);
            let u2 = ctx.g.square(u);
            let v2 = ctx.g.square(v);
            let dens = ctx.g.add(u2, v2);
            let per = ctx.g.mean_groups(dens, *per_slice);
            let norm = ctx.g.scale(per, lx * ly);
            let drift = ctx.g.add_scalar(norm, -n0);
            let lcons = ctx.g.mse(drift);
            terms.push((self.weights.conservation, lcons));
            loss::publish_components(
                ctx.g,
                &[("pde", lpde), ("ic", lic), ("conservation", lcons)],
            );
        } else {
            loss::publish_components(ctx.g, &[("pde", lpde), ("ic", lic)]);
        }
        loss::total_loss(ctx.g, &terms)
    }

    fn eval_error(&self, params: &ParamSet) -> f64 {
        let (side, nt) = self.eval_grid;
        let (lx, ly) = self.problem.lengths();
        let mut points = Vec::with_capacity(side * side * nt);
        let mut refs = Vec::with_capacity(side * side * nt);
        for k in 0..nt {
            let t = self.problem.t_end * k as f64 / (nt - 1).max(1) as f64;
            for i in 0..side {
                for j in 0..side {
                    let x = self.problem.x.0 + lx * i as f64 / side as f64;
                    let y = self.problem.y.0 + ly * j as f64 / side as f64;
                    points.push(vec![x, y, t]);
                    refs.push(self.reference.sample(x, y, t));
                }
            }
        }
        let pred = self.net.predict(params, &points);
        let mut num = 0.0;
        let mut den = 0.0;
        for (i, r) in refs.iter().enumerate() {
            num += (pred.get(&[i, 0]) - r.re).powi(2) + (pred.get(&[i, 1]) - r.im).powi(2);
            den += r.norm_sqr();
        }
        (num / den).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn tiny_task() -> (Tdse2dTask, ParamSet) {
        let problem = Tdse2dProblem::free_packet_2d();
        let mut cfg = Tdse2dTaskConfig::standard(12, 2);
        cfg.rff_features = 12;
        cfg.n_collocation = 96;
        cfg.n_ic_side = 6;
        cfg.conservation_grid = (2, 6);
        cfg.reference = (32, 60, 6);
        cfg.eval_grid = (8, 3);
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let task = Tdse2dTask::new(problem, &cfg, &mut params, &mut rng);
        (task, params)
    }

    #[test]
    fn loss_and_gradients_build() {
        let (mut task, params) = tiny_task();
        let mut g = qpinn_autodiff::Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let l = task.build_loss(&mut ctx);
        assert!(ctx.g.value(l).item().is_finite());
        let mut grads = ctx.g.backward(l);
        let collected = ctx.collect_grads(&mut grads);
        assert!(collected.iter().all(|t| t.all_finite()));
        let nonzero = collected.iter().filter(|t| t.max_abs() > 0.0).count();
        assert!(nonzero >= collected.len() - 1);
    }

    #[test]
    fn short_training_improves() {
        use crate::trainer::{TrainConfig, Trainer};
        use qpinn_optim::LrSchedule;
        let (mut task, mut params) = tiny_task();
        let e0 = task.eval_error(&params);
        let log = Trainer::new(TrainConfig {
            epochs: 40,
            schedule: LrSchedule::Constant { lr: 3e-3 },
            log_every: 10,
            eval_every: 0,
            clip: Some(100.0),
            lbfgs_polish: None,
            checkpoint: None,
            divergence: None,
            progress: None,
            run: None,
        })
        .train(&mut task, &mut params);
        assert!(log.final_loss < log.loss[0], "loss did not drop");
        assert!(
            log.final_error < 1.2 * e0,
            "error exploded: {e0} → {}",
            log.final_error
        );
    }

    #[test]
    fn spatial_periodicity_in_both_axes() {
        let (task, params) = tiny_task();
        let p = task.problem();
        let (lx, ly) = p.lengths();
        let base = task.net().predict(&params, &[vec![0.7, -0.4, 0.3]]);
        let wrapped_x = task.net().predict(&params, &[vec![0.7 + lx, -0.4, 0.3]]);
        let wrapped_y = task.net().predict(&params, &[vec![0.7, -0.4 - ly, 0.3]]);
        assert!(base.approx_eq(&wrapped_x, 1e-12));
        assert!(base.approx_eq(&wrapped_y, 1e-12));
    }
}
