//! The PINN field network: coordinate embeddings, optional random Fourier
//! features, and a jet-propagating MLP trunk.

use qpinn_autodiff::jet::Jet;
use qpinn_autodiff::{Graph, Var};
use qpinn_nn::{
    Activation, GraphCtx, Mlp, MlpConfig, ParamSet, PeriodicEmbedding, RandomFourierFeatures,
};
use qpinn_tensor::Tensor;
use rand::rngs::StdRng;

/// How one input coordinate is embedded.
#[derive(Clone, Copy, Debug)]
pub enum CoordSpec {
    /// Fed through unchanged.
    Raw,
    /// Exact periodicity with fixed period (spatial coordinates).
    Periodic {
        /// Domain length.
        length: f64,
    },
    /// Sin/cos features with a trainable period (time coordinate).
    LearnedPeriod {
        /// Initial period.
        period0: f64,
    },
}

impl CoordSpec {
    fn feature_width(&self) -> usize {
        match self {
            CoordSpec::Raw => 1,
            CoordSpec::Periodic { .. } | CoordSpec::LearnedPeriod { .. } => 2,
        }
    }
}

/// Random-Fourier-feature settings.
#[derive(Clone, Copy, Debug)]
pub struct RffSpec {
    /// Number of frequencies (output width is `2·n_features`).
    pub n_features: usize,
    /// Frequency scale σ.
    pub sigma: f64,
}

/// Architecture of a [`FieldNet`].
#[derive(Clone, Debug)]
pub struct FieldNetConfig {
    /// One spec per input coordinate, in order.
    pub coords: Vec<CoordSpec>,
    /// Optional RFF layer after the coordinate embeddings.
    pub rff: Option<RffSpec>,
    /// Hidden widths of the MLP trunk.
    pub hidden: Vec<usize>,
    /// Number of output fields (2 for a complex wavefunction `u + iv`).
    pub n_fields: usize,
    /// Hidden activation.
    pub activation: Activation,
}

impl FieldNetConfig {
    /// The standard TDSE/NLS architecture: periodic `x`, learned-period
    /// `t`, RFF, tanh trunk.
    pub fn standard_wave(length: f64, t_end: f64, width: usize, depth: usize) -> Self {
        FieldNetConfig {
            coords: vec![
                CoordSpec::Periodic { length },
                CoordSpec::LearnedPeriod {
                    period0: 4.0 * t_end,
                },
            ],
            rff: Some(RffSpec {
                n_features: 64,
                sigma: 1.0,
            }),
            hidden: vec![width; depth],
            n_fields: 2,
            activation: Activation::Tanh,
        }
    }

    /// A plain architecture (raw coordinates, no RFF) for ablations.
    pub fn plain(n_coords: usize, width: usize, depth: usize, n_fields: usize) -> Self {
        FieldNetConfig {
            coords: vec![CoordSpec::Raw; n_coords],
            rff: None,
            hidden: vec![width; depth],
            n_fields,
            activation: Activation::Tanh,
        }
    }
}

#[derive(Clone)]
enum Embed {
    Raw,
    Periodic(PeriodicEmbedding),
    Learned(qpinn_nn::periodic::LearnedPeriodEmbedding),
}

/// A PINN predicting `n_fields` real fields from continuous coordinates,
/// with exact first/second coordinate derivatives via jet propagation.
#[derive(Clone)]
pub struct FieldNet {
    embeds: Vec<Embed>,
    rff: Option<RandomFourierFeatures>,
    mlp: Mlp,
    n_fields: usize,
}

impl FieldNet {
    /// Register all parameters in `params` and fix the RFF projection.
    pub fn new(params: &mut ParamSet, rng: &mut StdRng, cfg: &FieldNetConfig, name: &str) -> Self {
        let embeds: Vec<Embed> = cfg
            .coords
            .iter()
            .enumerate()
            .map(|(i, c)| match c {
                CoordSpec::Raw => Embed::Raw,
                CoordSpec::Periodic { length } => Embed::Periodic(PeriodicEmbedding::new(*length)),
                CoordSpec::LearnedPeriod { period0 } => {
                    Embed::Learned(qpinn_nn::periodic::LearnedPeriodEmbedding::new(
                        params,
                        *period0,
                        &format!("{name}.coord{i}"),
                    ))
                }
            })
            .collect();
        let embed_width: usize = cfg.coords.iter().map(CoordSpec::feature_width).sum();
        let (rff, trunk_in) = match cfg.rff {
            Some(spec) => {
                let rff = RandomFourierFeatures::new(embed_width, spec.n_features, spec.sigma, rng);
                let w = rff.output_dim();
                (Some(rff), w)
            }
            None => (None, embed_width),
        };
        let mlp = Mlp::new(
            params,
            rng,
            &MlpConfig {
                input_dim: trunk_in,
                hidden: cfg.hidden.clone(),
                output_dim: cfg.n_fields,
                activation: cfg.activation,
            },
            name,
        );
        FieldNet {
            embeds,
            rff,
            mlp,
            n_fields: cfg.n_fields,
        }
    }

    /// Number of output fields.
    pub fn n_fields(&self) -> usize {
        self.n_fields
    }

    /// Number of input coordinates.
    pub fn n_coords(&self) -> usize {
        self.embeds.len()
    }

    /// Embed seeded coordinate jets into the trunk input jet.
    fn embed(&self, ctx: &mut GraphCtx<'_>, coord_jets: &[Jet]) -> Jet {
        assert_eq!(coord_jets.len(), self.embeds.len(), "coordinate arity");
        let parts: Vec<Jet> = self
            .embeds
            .iter()
            .zip(coord_jets)
            .map(|(e, j)| match e {
                Embed::Raw => j.clone(),
                Embed::Periodic(p) => p.forward_jet(ctx, j),
                Embed::Learned(l) => l.forward_jet(ctx, j),
            })
            .collect();
        let refs: Vec<&Jet> = parts.iter().collect();
        let features = Jet::hstack(ctx.g, &refs);
        match &self.rff {
            Some(rff) => rff.forward_jet(ctx, &features),
            None => features,
        }
    }

    /// Full jet forward pass: `columns[i]` is the `[batch, 1]` tensor of
    /// coordinate `i`; returns the `[batch, n_fields]` output jet tracking
    /// first and second derivatives with respect to every coordinate.
    pub fn forward_jet(&self, ctx: &mut GraphCtx<'_>, columns: &[Var]) -> Jet {
        let k = columns.len();
        let coord_jets: Vec<Jet> = columns
            .iter()
            .enumerate()
            .map(|(i, &c)| Jet::seed_coordinate(ctx.g, c, i, k))
            .collect();
        let x = self.embed(ctx, &coord_jets);
        self.mlp.forward_jet(ctx, &x)
    }

    /// Value-only forward pass (no derivative tracking) — used for
    /// evaluation and for loss terms that need field values only. Works by
    /// propagating zero-coordinate jets, so it shares the jet code path.
    pub fn forward_values(&self, ctx: &mut GraphCtx<'_>, columns: &[Var]) -> Var {
        let coord_jets: Vec<Jet> = columns
            .iter()
            .map(|&c| Jet {
                v: c,
                d: Vec::new(),
                dd: Vec::new(),
            })
            .collect();
        let x = self.embed(ctx, &coord_jets);
        self.mlp.forward_jet(ctx, &x).v
    }

    /// Evaluate the fields at a list of points (no gradients, fresh
    /// throwaway graph). `points[i]` is one coordinate tuple; returns the
    /// `[n_points, n_fields]` prediction tensor.
    pub fn predict(&self, params: &ParamSet, points: &[Vec<f64>]) -> Tensor {
        let k = self.n_coords();
        let mut flat = Vec::with_capacity(points.len() * k);
        for p in points {
            assert_eq!(p.len(), k, "coordinate arity");
            flat.extend_from_slice(p);
        }
        self.predict_batch(params, &flat)
    }

    /// The batched-evaluation entry point: evaluate the fields at
    /// `coords.len() / n_coords` points given row-major flattened
    /// coordinates (`[x0, t0, x1, t1, …]` for a 2-coordinate net).
    ///
    /// This is the path the `qpinn-serve` batching engine dispatches
    /// coalesced requests through: one call builds one constant column
    /// per coordinate and runs a single forward pass, whose matmuls go
    /// through the work-stealing pool. Every output row depends only on
    /// its own input row with a fixed-order dot product, so row `i` of a
    /// coalesced batch is bit-identical to evaluating point `i` alone —
    /// the invariant that makes request batching transparent (asserted
    /// by `tests/serve_e2e.rs`).
    pub fn predict_batch(&self, params: &ParamSet, coords: &[f64]) -> Tensor {
        let k = self.n_coords();
        assert!(
            k > 0 && coords.len() % k == 0,
            "flattened coords length {} is not a multiple of arity {k}",
            coords.len()
        );
        let n = coords.len() / k;
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, params);
        let columns: Vec<Var> = (0..k)
            .map(|c| {
                let col: Vec<f64> = (0..n).map(|i| coords[i * k + c]).collect();
                ctx.g.constant(Tensor::column(&col))
            })
            .collect();
        let out = self.forward_values(&mut ctx, &columns);
        g.value(out).clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn net(cfg: &FieldNetConfig) -> (ParamSet, FieldNet) {
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(0);
        let n = FieldNet::new(&mut params, &mut rng, cfg, "net");
        (params, n)
    }

    #[test]
    fn standard_wave_shapes() {
        let cfg = FieldNetConfig::standard_wave(10.0, 1.0, 32, 2);
        let (params, model) = net(&cfg);
        let pts = vec![vec![0.1, 0.2], vec![-3.0, 0.9], vec![4.0, 0.0]];
        let out = model.predict(&params, &pts);
        assert_eq!(out.shape().dims(), &[3, 2]);
        assert!(out.all_finite());
    }

    #[test]
    fn spatial_periodicity_is_exact() {
        let l = 10.0;
        let cfg = FieldNetConfig::standard_wave(l, 1.0, 16, 2);
        let (params, model) = net(&cfg);
        let a = model.predict(&params, &[vec![1.3, 0.4]]);
        let b = model.predict(&params, &[vec![1.3 + l, 0.4]]);
        let c = model.predict(&params, &[vec![1.3 - 2.0 * l, 0.4]]);
        assert!(a.approx_eq(&b, 1e-12));
        assert!(a.approx_eq(&c, 1e-12));
    }

    #[test]
    fn jet_value_agrees_with_predict() {
        let cfg = FieldNetConfig::standard_wave(4.0, 1.0, 16, 2);
        let (params, model) = net(&cfg);
        let pts = vec![vec![0.5, 0.3], vec![-1.0, 0.8]];
        let direct = model.predict(&params, &pts);
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let xcol = ctx.g.constant(Tensor::column(&[0.5, -1.0]));
        let tcol = ctx.g.constant(Tensor::column(&[0.3, 0.8]));
        let out = model.forward_jet(&mut ctx, &[xcol, tcol]);
        assert!(g.value(out.v).approx_eq(&direct, 1e-12));
    }

    #[test]
    fn jet_derivatives_match_finite_differences() {
        let cfg = FieldNetConfig::standard_wave(6.0, 1.0, 16, 2);
        let (params, model) = net(&cfg);
        let (x0, t0) = (0.7, 0.4);
        let h = 1e-4;
        let f = |x: f64, t: f64, field: usize| -> f64 {
            model.predict(&params, &[vec![x, t]]).get(&[0, field])
        };
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, &params);
        let xc = ctx.g.constant(Tensor::column(&[x0]));
        let tc = ctx.g.constant(Tensor::column(&[t0]));
        let out = model.forward_jet(&mut ctx, &[xc, tc]);
        for field in 0..2 {
            let ux = g.value(out.d[0]).get(&[0, field]);
            let ut = g.value(out.d[1]).get(&[0, field]);
            let uxx = g.value(out.dd[0]).get(&[0, field]);
            let fdx = (f(x0 + h, t0, field) - f(x0 - h, t0, field)) / (2.0 * h);
            let fdt = (f(x0, t0 + h, field) - f(x0, t0 - h, field)) / (2.0 * h);
            let fdxx =
                (f(x0 + h, t0, field) - 2.0 * f(x0, t0, field) + f(x0 - h, t0, field)) / (h * h);
            assert!((ux - fdx).abs() < 1e-5, "u_x field {field}: {ux} vs {fdx}");
            assert!((ut - fdt).abs() < 1e-5, "u_t field {field}: {ut} vs {fdt}");
            assert!(
                (uxx - fdxx).abs() < 1e-3 * fdxx.abs().max(1.0),
                "u_xx field {field}: {uxx} vs {fdxx}"
            );
        }
    }

    #[test]
    fn predict_batch_rows_are_independent_of_batch_composition() {
        // The batching-transparency invariant qpinn-serve relies on:
        // evaluating a point inside a large mixed batch must produce the
        // same f64 bits as evaluating it alone.
        let cfg = FieldNetConfig::standard_wave(8.0, 1.0, 24, 2);
        let (params, model) = net(&cfg);
        let pts: Vec<Vec<f64>> = (0..37)
            .map(|i| vec![-4.0 + 8.0 * i as f64 / 36.0, i as f64 / 36.0])
            .collect();
        let batched = model.predict(&params, &pts);
        for (i, p) in pts.iter().enumerate() {
            let solo = model.predict(&params, std::slice::from_ref(p));
            for f in 0..2 {
                assert_eq!(
                    batched.get(&[i, f]).to_bits(),
                    solo.get(&[0, f]).to_bits(),
                    "row {i} field {f} changed bits inside a batch"
                );
            }
        }
    }

    #[test]
    fn predict_batch_matches_predict() {
        let cfg = FieldNetConfig::plain(2, 16, 2, 2);
        let (params, model) = net(&cfg);
        let pts = vec![vec![0.1, 0.2], vec![-0.3, 0.9]];
        let flat = [0.1, 0.2, -0.3, 0.9];
        let a = model.predict(&params, &pts);
        let b = model.predict_batch(&params, &flat);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn plain_config_has_fewer_params_than_rff() {
        let plain = net(&FieldNetConfig::plain(2, 32, 2, 2)).0.n_scalars();
        let rff = net(&FieldNetConfig::standard_wave(4.0, 1.0, 32, 2))
            .0
            .n_scalars();
        assert!(rff > plain);
    }
}
