//! The training loop: Adam with a learning-rate schedule, optional global
//! gradient clipping, trajectory logging, and optional L-BFGS polishing.

use qpinn_autodiff::Graph;
use qpinn_nn::{GraphCtx, ParamSet};
use qpinn_optim::{clip, Adam, Lbfgs, LbfgsConfig, LrSchedule, Optimizer};
use std::time::Instant;

/// A trainable physics-informed task.
pub trait PinnTask {
    /// Build the scalar total loss for the current parameters on a fresh
    /// tape. May update internal curriculum state (causal weights).
    fn build_loss(&mut self, ctx: &mut GraphCtx<'_>) -> qpinn_autodiff::Var;

    /// Evaluation error of the current parameters (e.g. relative L2
    /// against the reference solution).
    fn eval_error(&self, params: &ParamSet) -> f64;
}

/// Training hyperparameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of Adam epochs (full-batch steps).
    pub epochs: usize,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
    /// Record loss/gradient-norm every this many epochs.
    pub log_every: usize,
    /// Record the evaluation error every this many epochs (0 = only at the
    /// end).
    pub eval_every: usize,
    /// Optional global gradient-norm clip.
    pub clip: Option<f64>,
    /// Optional L-BFGS polishing iterations after Adam.
    pub lbfgs_polish: Option<usize>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 2000,
            schedule: LrSchedule::Step {
                lr0: 1e-3,
                factor: 0.85,
                every: 2000,
            },
            log_every: 50,
            eval_every: 0,
            clip: Some(1e3),
            lbfgs_polish: None,
        }
    }
}

/// Trajectories recorded during training.
#[derive(Clone, Debug, Default)]
pub struct TrainLog {
    /// Epoch indices of the loss records.
    pub epochs: Vec<usize>,
    /// Total loss at those epochs.
    pub loss: Vec<f64>,
    /// Global gradient norm at those epochs.
    pub grad_norm: Vec<f64>,
    /// Epoch indices of the error records.
    pub eval_epochs: Vec<usize>,
    /// Evaluation error at those epochs.
    pub error: Vec<f64>,
    /// Wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// Final loss.
    pub final_loss: f64,
    /// Final evaluation error.
    pub final_error: f64,
}

/// Drives a [`PinnTask`] to convergence.
pub struct Trainer {
    /// Hyperparameters.
    pub cfg: TrainConfig,
}

impl Trainer {
    /// With the given configuration.
    pub fn new(cfg: TrainConfig) -> Self {
        Trainer { cfg }
    }

    /// One full-batch loss+gradient evaluation (used by both Adam steps and
    /// the L-BFGS closure).
    fn loss_and_grads(
        task: &mut dyn PinnTask,
        params: &ParamSet,
    ) -> (f64, Vec<qpinn_tensor::Tensor>) {
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, params);
        let loss = task.build_loss(&mut ctx);
        let loss_val = ctx.g.value(loss).item();
        let mut grads = ctx.g.backward(loss);
        let collected = ctx.collect_grads(&mut grads);
        (loss_val, collected)
    }

    /// Run Adam (+ optional L-BFGS polish) and return the log.
    pub fn train(&self, task: &mut dyn PinnTask, params: &mut ParamSet) -> TrainLog {
        let start = Instant::now();
        let mut log = TrainLog::default();
        let mut opt = Adam::new(self.cfg.schedule.at(0));
        let mut last_loss = f64::NAN;
        for epoch in 0..self.cfg.epochs {
            opt.set_lr(self.cfg.schedule.at(epoch));
            let (loss_val, mut grads) = Self::loss_and_grads(task, params);
            last_loss = loss_val;
            let gnorm = match self.cfg.clip {
                Some(c) => clip::clip_global_norm(&mut grads, c),
                None => clip::global_norm(&grads),
            };
            if epoch % self.cfg.log_every.max(1) == 0 {
                log.epochs.push(epoch);
                log.loss.push(loss_val);
                log.grad_norm.push(gnorm);
            }
            if self.cfg.eval_every > 0 && epoch % self.cfg.eval_every == 0 {
                log.eval_epochs.push(epoch);
                log.error.push(task.eval_error(params));
            }
            opt.step(params.tensors_mut(), &grads);
        }

        if let Some(max_iters) = self.cfg.lbfgs_polish {
            let x0 = params.flatten();
            let mut scratch = params.clone();
            let res = Lbfgs::new(LbfgsConfig {
                max_iters,
                ..Default::default()
            })
            .minimize(
                |x| {
                    scratch.assign_flat(x);
                    let (f, grads) = Self::loss_and_grads(task, &scratch);
                    let mut flat = Vec::with_capacity(x.len());
                    for t in &grads {
                        flat.extend_from_slice(t.data());
                    }
                    (f, flat)
                },
                x0,
            );
            // Keep the polish only if it actually improved the loss.
            if res.f.is_finite() && res.f < last_loss {
                params.assign_flat(&res.x);
                last_loss = res.f;
            }
        }

        log.final_loss = last_loss;
        log.final_error = task.eval_error(params);
        log.wall_s = start.elapsed().as_secs_f64();
        log
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpinn_autodiff::Var;
    use qpinn_tensor::Tensor;

    /// A toy task: fit a scalar parameter to minimize (w − 3)².
    struct Quadratic {
        target: f64,
        id: qpinn_nn::ParamId,
    }

    impl PinnTask for Quadratic {
        fn build_loss(&mut self, ctx: &mut GraphCtx<'_>) -> Var {
            let w = ctx.param(self.id);
            let d = ctx.g.add_scalar(w, -self.target);
            ctx.g.mse(d)
        }
        fn eval_error(&self, params: &ParamSet) -> f64 {
            (params.tensors()[0].item() - self.target).abs()
        }
    }

    fn make_task() -> (Quadratic, ParamSet) {
        let mut params = ParamSet::new();
        let id = params.add("w", Tensor::from_vec([1, 1], vec![0.0]));
        (Quadratic { target: 3.0, id }, params)
    }

    #[test]
    fn adam_fits_quadratic() {
        let (mut task, mut params) = make_task();
        let trainer = Trainer::new(TrainConfig {
            epochs: 3000,
            schedule: LrSchedule::Constant { lr: 0.01 },
            log_every: 100,
            eval_every: 500,
            clip: None,
            lbfgs_polish: None,
        });
        let log = trainer.train(&mut task, &mut params);
        assert!(log.final_error < 1e-3, "err {}", log.final_error);
        assert!(!log.loss.is_empty() && !log.error.is_empty());
        assert!(log.loss.last().unwrap() < &log.loss[0]);
    }

    #[test]
    fn lbfgs_polish_reaches_machine_precision() {
        let (mut task, mut params) = make_task();
        let trainer = Trainer::new(TrainConfig {
            epochs: 200,
            schedule: LrSchedule::Constant { lr: 0.05 },
            log_every: 50,
            eval_every: 0,
            clip: None,
            lbfgs_polish: Some(50),
        });
        let log = trainer.train(&mut task, &mut params);
        assert!(log.final_error < 1e-8, "err {}", log.final_error);
    }

    #[test]
    fn clipping_bounds_recorded_gradients() {
        let (mut task, mut params) = make_task();
        params.tensors_mut()[0].data_mut()[0] = 1e6; // huge initial gradient
        let trainer = Trainer::new(TrainConfig {
            epochs: 5,
            schedule: LrSchedule::Constant { lr: 0.1 },
            log_every: 1,
            eval_every: 0,
            clip: Some(1.0),
            lbfgs_polish: None,
        });
        let log = trainer.train(&mut task, &mut params);
        // pre-clip norms are recorded; the *updates* were clipped, so the
        // parameter cannot have moved more than lr per step.
        assert!(log.grad_norm[0] > 1.0);
        assert!((params.tensors()[0].item() - 1e6).abs() < 0.1 * 5.0 + 1e-9);
    }
}
