//! The training loop: Adam with a learning-rate schedule, optional global
//! gradient clipping, trajectory logging, optional L-BFGS polishing,
//! periodic crash-safe checkpointing with bit-exact resume, and a
//! divergence guard that stops hopeless runs early.
//!
//! # Observability
//!
//! Every epoch runs under a telemetry `epoch` span with nested phase
//! spans — `loss` (the task may nest `sample`/`forward`/`residual`
//! inside), `backward`, `step`, `eval`, `checkpoint` — so a JSONL sink
//! reconstructs exactly where each epoch's time went. Progress marks at
//! `log_every` intervals carry loss/grad-norm/lr, `pool_stats` events
//! report work-stealing balance, and anything that would previously have
//! been a bare `eprintln!` (unwritable checkpoint dir, failed save,
//! non-finite loss) is both emitted as a `warn` event and surfaced in
//! [`TrainLog::warnings`]. All of it is dormant (one atomic load per
//! span) unless a sink is installed.

use crate::report::Json;
use crate::runs::{EpochPoint, LayerGrad, RunOutcome, RunRecorder};
use qpinn_autodiff::Graph;
use qpinn_nn::{GraphCtx, ParamSet};
use qpinn_optim::{clip, Adam, Lbfgs, LbfgsConfig, LrSchedule, Optimizer};
use qpinn_persist::{RetentionPolicy, RunMeta, Snapshot, SnapshotStore, TrainLogRecord};
use qpinn_telemetry as telemetry;
use std::path::PathBuf;
use std::time::Instant;

/// A trainable physics-informed task.
pub trait PinnTask {
    /// Build the scalar total loss for the current parameters on a fresh
    /// tape. May update internal curriculum state (causal weights).
    fn build_loss(&mut self, ctx: &mut GraphCtx<'_>) -> qpinn_autodiff::Var;

    /// Evaluation error of the current parameters (e.g. relative L2
    /// against the reference solution).
    fn eval_error(&self, params: &ParamSet) -> f64;

    /// Serialize task-internal training state (e.g. causal-curriculum
    /// weights) into an opaque blob stored in checkpoints. Stateless tasks
    /// keep the default empty blob.
    fn export_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restore state previously produced by [`PinnTask::export_state`].
    /// The default ignores the blob, matching the default export.
    fn import_state(&mut self, _bytes: &[u8]) {}
}

/// Where, how often, and how durably to checkpoint a training run.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    /// Directory the snapshots live in (created on first save).
    pub dir: PathBuf,
    /// Save every this many epochs (a final save at the last epoch always
    /// happens regardless). Values of 0 are treated as 1.
    pub every: usize,
    /// Run identifier recorded in each snapshot's metadata.
    pub run_id: String,
    /// Which snapshots survive pruning after each save.
    pub retention: RetentionPolicy,
}

impl CheckpointConfig {
    /// Checkpoint into `dir` every 500 epochs with the default retention
    /// (last 3 plus best-by-eval-error).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            every: 500,
            run_id: "run".into(),
            retention: RetentionPolicy::default(),
        }
    }

    /// Set the save interval.
    pub fn every(mut self, every: usize) -> Self {
        self.every = every;
        self
    }

    /// Set the run identifier recorded in snapshot metadata.
    pub fn run_id(mut self, id: impl Into<String>) -> Self {
        self.run_id = id.into();
        self
    }

    /// Set the retention policy.
    pub fn retention(mut self, policy: RetentionPolicy) -> Self {
        self.retention = policy;
        self
    }
}

/// Early-stop guard against diverging runs: rather than burning the full
/// epoch budget on a run whose loss has exploded, stop once the loss has
/// been non-finite or more than `factor` × its running minimum for
/// `patience` consecutive log intervals.
///
/// Off by default in [`TrainConfig`] (library users may want the full
/// trajectory); the bench harness turns it on.
#[derive(Clone, Copy, Debug)]
pub struct DivergenceGuard {
    /// Loss divergence threshold relative to the running minimum.
    pub factor: f64,
    /// Consecutive bad log intervals tolerated before stopping (values of
    /// 0 are treated as 1).
    pub patience: usize,
}

impl Default for DivergenceGuard {
    fn default() -> Self {
        DivergenceGuard {
            factor: 1e3,
            patience: 3,
        }
    }
}

/// A point-in-time view of training progress, delivered to
/// [`TrainConfig::progress`] hooks at every `log_every` interval and
/// mirrored into the `train.progress.*` telemetry gauges (which the
/// `qpinn-obs` metrics server exposes at `/progress`).
#[derive(Clone, Copy, Debug, Default)]
pub struct Progress {
    /// Current epoch index.
    pub epoch: usize,
    /// Planned total epochs for this run.
    pub epochs_total: usize,
    /// Loss at this epoch.
    pub loss: f64,
    /// Global gradient norm at this epoch.
    pub grad_norm: f64,
    /// Learning rate at this epoch.
    pub lr: f64,
    /// Measured seconds per epoch over the last log interval (0 until a
    /// full interval has elapsed).
    pub s_per_epoch: f64,
    /// Estimated seconds to completion (`s_per_epoch` × remaining
    /// epochs; 0 until `s_per_epoch` is known).
    pub eta_s: f64,
    /// Wall-clock seconds elapsed in this run so far (including time
    /// accumulated before a resume).
    pub wall_s: f64,
}

/// A shareable callback receiving [`Progress`] updates; wraps the
/// closure in an `Arc` so [`TrainConfig`] stays `Clone`.
#[derive(Clone)]
pub struct ProgressHook(pub std::sync::Arc<dyn Fn(&Progress) + Send + Sync>);

impl ProgressHook {
    /// Wrap a closure.
    pub fn new(f: impl Fn(&Progress) + Send + Sync + 'static) -> Self {
        ProgressHook(std::sync::Arc::new(f))
    }
}

impl std::fmt::Debug for ProgressHook {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ProgressHook(..)")
    }
}

/// Training hyperparameters.
#[derive(Clone, Debug)]
pub struct TrainConfig {
    /// Number of Adam epochs (full-batch steps).
    pub epochs: usize,
    /// Learning-rate schedule.
    pub schedule: LrSchedule,
    /// Record loss/gradient-norm every this many epochs.
    pub log_every: usize,
    /// Record the evaluation error every this many epochs (0 = only at the
    /// end).
    pub eval_every: usize,
    /// Optional global gradient-norm clip.
    pub clip: Option<f64>,
    /// Optional L-BFGS polishing iterations after Adam.
    pub lbfgs_polish: Option<usize>,
    /// Optional periodic checkpointing. `None` trains without artifacts.
    pub checkpoint: Option<CheckpointConfig>,
    /// Optional early stop on divergence (checked at `log_every`
    /// intervals). `None` always runs the full budget.
    pub divergence: Option<DivergenceGuard>,
    /// Optional callback invoked with a [`Progress`] snapshot at every
    /// `log_every` interval (e.g. to feed a live `/progress` endpoint).
    /// Independent of telemetry sinks: the hook fires even when the
    /// event layer is dormant.
    pub progress: Option<ProgressHook>,
    /// Optional durable `qpinn-run-v1` run record (see [`crate::runs`]):
    /// an atomic manifest plus an append-only epoch series under
    /// `<dir>/<run_id>/`. `None` leaves no record behind.
    pub run: Option<crate::runs::RunConfig>,
}

impl Default for TrainConfig {
    fn default() -> Self {
        TrainConfig {
            epochs: 2000,
            schedule: LrSchedule::Step {
                lr0: 1e-3,
                factor: 0.85,
                // Must divide into the default epoch budget so the decay
                // actually fires: every=500 gives three decays over 2000
                // epochs (the old value of 2000 never fired once).
                every: 500,
            },
            log_every: 50,
            eval_every: 0,
            clip: Some(1e3),
            lbfgs_polish: None,
            checkpoint: None,
            divergence: None,
            progress: None,
            run: None,
        }
    }
}

/// Trajectories recorded during training.
#[derive(Clone, Debug, Default)]
pub struct TrainLog {
    /// Epoch indices of the loss records.
    pub epochs: Vec<usize>,
    /// Total loss at those epochs.
    pub loss: Vec<f64>,
    /// Global gradient norm at those epochs.
    pub grad_norm: Vec<f64>,
    /// Epoch indices of the error records.
    pub eval_epochs: Vec<usize>,
    /// Evaluation error at those epochs.
    pub error: Vec<f64>,
    /// Wall-clock seconds for the whole run.
    pub wall_s: f64,
    /// Final loss.
    pub final_loss: f64,
    /// Final evaluation error.
    pub final_error: f64,
    /// True when the divergence guard stopped the run early.
    pub diverged: bool,
    /// Epoch the run stopped at, when it stopped before `cfg.epochs`.
    pub stop_epoch: Option<usize>,
    /// Human-readable warnings raised during this run (unwritable
    /// checkpoint directory, failed snapshot saves, non-finite losses).
    /// Run-transient: not persisted into checkpoints.
    pub warnings: Vec<String>,
    /// Id of the durable `qpinn-run-v1` record this run wrote, when
    /// [`TrainConfig::run`] was set and the record opened successfully.
    pub run_id: Option<String>,
}

/// Drives a [`PinnTask`] to convergence.
pub struct Trainer {
    /// Hyperparameters.
    pub cfg: TrainConfig,
}

impl Trainer {
    /// With the given configuration.
    pub fn new(cfg: TrainConfig) -> Self {
        Trainer { cfg }
    }

    /// One full-batch loss+gradient evaluation (used by both Adam steps and
    /// the L-BFGS closure).
    fn loss_and_grads(
        task: &mut dyn PinnTask,
        params: &ParamSet,
    ) -> (f64, Vec<qpinn_tensor::Tensor>) {
        let mut g = Graph::new();
        let mut ctx = GraphCtx::new(&mut g, params);
        let (loss, loss_val) = {
            // Tasks nest their own sample/forward/residual spans here.
            let _span = telemetry::span("loss");
            let loss = task.build_loss(&mut ctx);
            let loss_val = ctx.g.value(loss).item();
            (loss, loss_val)
        };
        let collected = {
            let _span = telemetry::span("backward");
            let mut grads = ctx.g.backward(loss);
            ctx.collect_grads(&mut grads)
        };
        grad_evals().inc();
        (loss_val, collected)
    }

    /// Run Adam (+ optional L-BFGS polish) from scratch and return the log.
    pub fn train(&self, task: &mut dyn PinnTask, params: &mut ParamSet) -> TrainLog {
        let opt = Adam::new(self.cfg.schedule.at(0));
        self.train_segment(task, params, 0, opt, TrainLog::default())
    }

    /// Resume training from the newest intact snapshot in `dir`.
    ///
    /// Restores parameters, Adam state (step count and moment buffers),
    /// epoch position, task state, and the accumulated log, then continues
    /// until `cfg.epochs`. The continuation is bit-exact: training 2N
    /// epochs in one run produces the same `f64` parameters as training N,
    /// checkpointing, and resuming for N more (as long as L-BFGS polishing
    /// is off — the polish runs after the final snapshot is written, so its
    /// effect is not captured in checkpoints).
    ///
    /// Corrupt or truncated snapshots are skipped in favor of the newest
    /// intact one; the error reports when none survives.
    pub fn resume(
        &self,
        dir: impl Into<PathBuf>,
        task: &mut dyn PinnTask,
        params: &mut ParamSet,
    ) -> qpinn_persist::Result<TrainLog> {
        let store = SnapshotStore::open(dir)?;
        let (snap, path) = store.load_latest()?;
        *params = snap.params;
        task.import_state(&snap.task_state);
        let opt = Adam::from_state(snap.optim);
        let start_epoch = usize::try_from(snap.meta.next_epoch).map_err(|_| {
            qpinn_persist::PersistError::Malformed(format!(
                "snapshot epoch {} overflows usize",
                snap.meta.next_epoch
            ))
        })?;
        let log = record_to_log(&snap.log);
        telemetry::mark("resumed", |e| {
            e.field("start_epoch", start_epoch)
                .field("path", path.display().to_string())
        });
        Ok(self.train_segment(task, params, start_epoch, opt, log))
    }

    /// The shared epoch loop: runs `[start_epoch, cfg.epochs)`, appending to
    /// an already-populated `log` so resumed runs report one continuous
    /// trajectory with accumulated wall time.
    fn train_segment(
        &self,
        task: &mut dyn PinnTask,
        params: &mut ParamSet,
        start_epoch: usize,
        mut opt: Adam,
        mut log: TrainLog,
    ) -> TrainLog {
        let start = Instant::now();
        let prior_wall = log.wall_s;
        let store = self.cfg.checkpoint.as_ref().and_then(|c| {
            match SnapshotStore::open(&c.dir) {
                Ok(s) => Some(s),
                Err(e) => {
                    // The run continues without checkpoints; make that
                    // impossible to miss: a warn event for sinks, a line
                    // on stderr, and a record in the returned log.
                    let msg = telemetry::warn(
                        "checkpoint_dir_unavailable",
                        format!(
                            "cannot open checkpoint dir {}: {e}; continuing WITHOUT checkpoints",
                            c.dir.display()
                        ),
                    );
                    eprintln!("warning: {msg}");
                    log.warnings.push(msg);
                    None
                }
            }
        });
        // Durable run record: opened here so its manifest reflects the
        // actual pool/SIMD widths of the executing segment. An unopenable
        // record degrades to a warning — same policy as checkpoints.
        let mut recorder = self.cfg.run.as_ref().and_then(|rc| {
            let train = Json::obj(vec![
                ("epochs", Json::Num(self.cfg.epochs as f64)),
                ("lr0", Json::Num(self.cfg.schedule.at(0))),
                ("log_every", Json::Num(self.cfg.log_every as f64)),
                (
                    "clip",
                    self.cfg.clip.map(Json::Num).unwrap_or(Json::Null),
                ),
                (
                    "lbfgs_polish",
                    self.cfg
                        .lbfgs_polish
                        .map(|n| Json::Num(n as f64))
                        .unwrap_or(Json::Null),
                ),
            ]);
            match RunRecorder::begin(rc, self.cfg.epochs, train) {
                Ok(r) => Some(r),
                Err(e) => {
                    let msg = telemetry::warn(
                        "run_record_unavailable",
                        format!(
                            "cannot open run record under {}: {e}; continuing WITHOUT a run record",
                            rc.dir.display()
                        ),
                    );
                    eprintln!("warning: {msg}");
                    log.warnings.push(msg);
                    None
                }
            }
        });
        log.run_id = recorder.as_ref().map(|r| r.run_id().to_string());
        // A resumed segment that has nothing left to do must still report
        // the loss the run ended on.
        let mut last_loss = if start_epoch == 0 {
            f64::NAN
        } else {
            log.final_loss
        };
        // Divergence-guard state: running finite minimum of the loss and
        // the number of consecutive bad log intervals.
        let mut min_loss = f64::INFINITY;
        let mut bad_intervals = 0usize;
        let mut warned_non_finite = false;
        // Throughput estimate for progress reporting: epoch/time of the
        // previous log mark, so s/epoch reflects the latest interval.
        let mut last_mark: Option<(Instant, usize)> = None;
        for epoch in start_epoch..self.cfg.epochs {
            let mut epoch_span = telemetry::span("epoch");
            epoch_span.field("epoch", epoch);
            let lr = self.cfg.schedule.at(epoch);
            opt.set_lr(lr);
            let (loss_val, mut grads) = Self::loss_and_grads(task, params);
            last_loss = loss_val;
            if loss_val.is_finite() {
                min_loss = min_loss.min(loss_val);
            } else if !warned_non_finite {
                warned_non_finite = true;
                let msg = telemetry::warn(
                    "non_finite_loss",
                    format!("loss became non-finite at epoch {epoch}"),
                );
                log.warnings.push(msg);
            }
            // Per-layer gradient norm + variance, recorded *pre-clip* (the
            // raw optimization signal, like `log.grad_norm`) and only at
            // log intervals so the hot loop stays flat.
            let mut layer_stats = Vec::new();
            if epoch % self.cfg.log_every.max(1) == 0 {
                layer_stats = layer_grad_stats(params, &grads);
            }
            let gnorm = match self.cfg.clip {
                Some(c) => clip::clip_global_norm(&mut grads, c),
                None => clip::global_norm(&grads),
            };
            if epoch % self.cfg.log_every.max(1) == 0 {
                log.epochs.push(epoch);
                log.loss.push(loss_val);
                log.grad_norm.push(gnorm);
                let now = Instant::now();
                let s_per_epoch = match last_mark {
                    Some((t0, e0)) if epoch > e0 => {
                        (now - t0).as_secs_f64() / (epoch - e0) as f64
                    }
                    _ => 0.0,
                };
                last_mark = Some((now, epoch));
                let progress = Progress {
                    epoch,
                    epochs_total: self.cfg.epochs,
                    loss: loss_val,
                    grad_norm: gnorm,
                    lr,
                    s_per_epoch,
                    eta_s: s_per_epoch * (self.cfg.epochs - epoch) as f64,
                    wall_s: prior_wall + start.elapsed().as_secs_f64(),
                };
                publish_progress(&progress);
                if let Some(hook) = &self.cfg.progress {
                    (hook.0)(&progress);
                }
                telemetry::mark("train_progress", |e| {
                    e.field("epoch", epoch)
                        .field("epochs_total", self.cfg.epochs)
                        .field("loss", loss_val)
                        .field("grad_norm", gnorm)
                        .field("lr", lr)
                        .field("s_per_epoch", progress.s_per_epoch)
                        .field("eta_s", progress.eta_s)
                });
                if let Some(rec) = recorder.as_mut() {
                    rec.epoch(&EpochPoint {
                        epoch,
                        loss: loss_val,
                        grad_norm: gnorm,
                        lr,
                        epoch_ms: progress.s_per_epoch * 1e3,
                        components: loss_components(),
                        layers: std::mem::take(&mut layer_stats),
                    });
                }
                if let Some(guard) = &self.cfg.divergence {
                    let bad = !loss_val.is_finite()
                        || (min_loss.is_finite() && loss_val > guard.factor * min_loss);
                    bad_intervals = if bad { bad_intervals + 1 } else { 0 };
                    if bad_intervals >= guard.patience.max(1) {
                        telemetry::mark("diverged", |e| {
                            e.field("epoch", epoch)
                                .field("loss", loss_val)
                                .field("min_loss", min_loss)
                                .field("bad_intervals", bad_intervals)
                        });
                        let msg = format!(
                            "diverged at epoch {epoch}: loss {loss_val:.3e} vs min {min_loss:.3e} \
                             for {bad_intervals} consecutive log intervals; stopping early"
                        );
                        eprintln!("warning: {msg}");
                        log.warnings.push(msg);
                        log.diverged = true;
                        log.stop_epoch = Some(epoch);
                        if let Some(rec) = recorder.as_mut() {
                            rec.diverged(epoch, loss_val, min_loss);
                        }
                        break;
                    }
                }
            }
            if self.cfg.eval_every > 0 && epoch % self.cfg.eval_every == 0 {
                let _span = telemetry::span("eval");
                log.eval_epochs.push(epoch);
                log.error.push(task.eval_error(params));
            }
            {
                let _span = telemetry::span("step");
                opt.step(params.tensors_mut(), &grads);
            }
            if let (Some(ckpt), Some(store)) = (&self.cfg.checkpoint, &store) {
                let next_epoch = epoch + 1;
                if next_epoch % ckpt.every.max(1) == 0 || next_epoch == self.cfg.epochs {
                    let _span = telemetry::span("checkpoint");
                    let mut saved_log = log.clone();
                    saved_log.wall_s = prior_wall + start.elapsed().as_secs_f64();
                    saved_log.final_loss = last_loss;
                    saved_log.final_error = task.eval_error(params);
                    let snap = Snapshot {
                        meta: RunMeta {
                            run_id: ckpt.run_id.clone(),
                            next_epoch: next_epoch as u64,
                            planned_epochs: self.cfg.epochs as u64,
                            eval_error: saved_log.final_error,
                        },
                        params: params.clone(),
                        optim: opt.export_state(),
                        log: log_to_record(&saved_log),
                        task_state: task.export_state(),
                    };
                    match store.save(&snap, &ckpt.retention) {
                        Ok(path) => {
                            if let Some(rec) = recorder.as_mut() {
                                rec.checkpoint(next_epoch, &path);
                            }
                        }
                        Err(e) => {
                            let msg = telemetry::warn(
                                "checkpoint_save_failed",
                                format!("checkpoint save failed: {e}"),
                            );
                            eprintln!("warning: {msg}");
                            log.warnings.push(msg);
                        }
                    }
                }
            }
        }
        crate::obs::emit_pool_stats("train_segment");
        crate::obs::emit_buffer_pool_stats("train_segment");

        if let Some(max_iters) = self.cfg.lbfgs_polish {
            let x0 = params.flatten();
            let mut scratch = params.clone();
            let res = Lbfgs::new(LbfgsConfig {
                max_iters,
                ..Default::default()
            })
            .minimize(
                |x| {
                    scratch.assign_flat(x);
                    let (f, grads) = Self::loss_and_grads(task, &scratch);
                    let mut flat = Vec::with_capacity(x.len());
                    for t in &grads {
                        flat.extend_from_slice(t.data());
                    }
                    (f, flat)
                },
                x0,
            );
            // Keep the polish only if it actually improved the loss.
            if res.f.is_finite() && res.f < last_loss {
                params.assign_flat(&res.x);
                last_loss = res.f;
            }
        }

        log.final_loss = last_loss;
        log.final_error = task.eval_error(params);
        log.wall_s = prior_wall + start.elapsed().as_secs_f64();
        // Publish the terminal manifest. A failed finalize leaves the
        // intact start-of-run manifest behind (outcome `incomplete`),
        // which is exactly what a crash would have left.
        if let Some(mut rec) = recorder.take() {
            let outcome = if log.diverged {
                RunOutcome::Diverged
            } else if !log.final_loss.is_finite() {
                RunOutcome::Error
            } else {
                RunOutcome::Converged
            };
            let epochs_run = log.stop_epoch.unwrap_or(self.cfg.epochs);
            if let Err(e) = rec.finalize(outcome, epochs_run, log.final_loss, log.final_error) {
                let msg = telemetry::warn(
                    "run_finalize_failed",
                    format!("run {} finalize failed: {e}", rec.run_id()),
                );
                eprintln!("warning: {msg}");
                log.warnings.push(msg);
            }
        }
        // Telemetry sinks swallow I/O errors on the dispatch path (a full
        // disk must not kill training); surface any accumulated failure
        // here, where emitting a warn event is re-entrancy-safe.
        if let Some(err) = telemetry::take_write_error() {
            let lost = telemetry::counter("telemetry.write_errors").get();
            let msg = telemetry::warn(
                "telemetry_write_failed",
                format!("telemetry sink writes failed ({lost} so far): {err}"),
            );
            eprintln!("warning: {msg}");
            log.warnings.push(msg);
        }
        log
    }
}

/// Mirror a [`Progress`] snapshot into the always-on metrics registry so
/// the `/progress` and `/metrics` endpoints (and final metric snapshots)
/// reflect training state without any sink installed.
fn publish_progress(p: &Progress) {
    telemetry::gauge("train.progress.epoch").set(p.epoch as f64);
    telemetry::gauge("train.progress.epochs_total").set(p.epochs_total as f64);
    telemetry::gauge("train.progress.loss").set(p.loss);
    telemetry::gauge("train.progress.grad_norm").set(p.grad_norm);
    telemetry::gauge("train.progress.lr").set(p.lr);
    telemetry::gauge("train.progress.s_per_epoch").set(p.s_per_epoch);
    telemetry::gauge("train.progress.eta_s").set(p.eta_s);
    telemetry::gauge("train.progress.wall_s").set(p.wall_s);
}

/// Per-layer gradient norm + variance: one `train.grad.norm.<layer>`
/// and one `train.grad.var.<layer>` histogram sample per parameter
/// tensor, returned as [`LayerGrad`] rows for the run-record series.
/// `grads` is the [`ParamSet`]-ordered vector from `collect_grads`, so
/// zipping with [`ParamSet::iter`] pairs each stat with its layer name.
/// Values go through [`telemetry::Histogram::record_f64`] (nano-unit
/// scaling), so the log2 buckets resolve magnitudes down to 1e-9. The
/// variance is the population variance of the layer's gradient *entries*
/// — the barren-plateau signal: it collapsing toward zero across depth
/// is what the mitigation literature tracks.
fn layer_grad_stats(params: &ParamSet, grads: &[qpinn_tensor::Tensor]) -> Vec<LayerGrad> {
    params
        .iter()
        .zip(grads)
        .map(|((_, name, _), g)| {
            let data = g.data();
            let n = data.len().max(1) as f64;
            let (mut sum, mut sum_sq) = (0.0, 0.0);
            for v in data {
                sum += v;
                sum_sq += v * v;
            }
            let norm = sum_sq.sqrt();
            let mean = sum / n;
            let var = (sum_sq / n - mean * mean).max(0.0);
            telemetry::histogram(&format!("train.grad.norm.{name}")).record_f64(norm);
            telemetry::histogram(&format!("train.grad.var.{name}")).record_f64(var);
            LayerGrad {
                name: name.to_string(),
                norm,
                var,
            }
        })
        .collect()
}

/// Snapshot the named `train.loss.<component>` gauges (set by the loss
/// assembly every build) for the run-record series. The registry is
/// process-global, so concurrently training seeds can interleave these;
/// the per-run `loss`/`grad_norm` fields are always exact.
fn loss_components() -> Vec<(String, f64)> {
    let snap = telemetry::global().snapshot();
    snap.gauges
        .iter()
        .filter_map(|(name, v)| {
            name.strip_prefix("train.loss.")
                .map(|c| (c.to_string(), *v))
        })
        .collect()
}

/// Cached handle for the `train.grad_evals` counter so the per-epoch hot
/// path pays one relaxed atomic add, not a registry map lookup.
fn grad_evals() -> &'static std::sync::Arc<telemetry::Counter> {
    static CTR: std::sync::OnceLock<std::sync::Arc<telemetry::Counter>> =
        std::sync::OnceLock::new();
    CTR.get_or_init(|| telemetry::counter("train.grad_evals"))
}

/// Lossless conversion into the persist crate's plain-data log mirror.
fn log_to_record(log: &TrainLog) -> TrainLogRecord {
    TrainLogRecord {
        epochs: log.epochs.iter().map(|&e| e as u64).collect(),
        loss: log.loss.clone(),
        grad_norm: log.grad_norm.clone(),
        eval_epochs: log.eval_epochs.iter().map(|&e| e as u64).collect(),
        error: log.error.clone(),
        wall_s: log.wall_s,
        final_loss: log.final_loss,
        final_error: log.final_error,
    }
}

/// Inverse of [`log_to_record`].
fn record_to_log(rec: &TrainLogRecord) -> TrainLog {
    TrainLog {
        epochs: rec.epochs.iter().map(|&e| e as usize).collect(),
        loss: rec.loss.clone(),
        grad_norm: rec.grad_norm.clone(),
        eval_epochs: rec.eval_epochs.iter().map(|&e| e as usize).collect(),
        error: rec.error.clone(),
        wall_s: rec.wall_s,
        final_loss: rec.final_loss,
        final_error: rec.final_error,
        // Run-transient fields are deliberately not persisted; a resumed
        // run starts with a clean slate for them.
        diverged: false,
        stop_epoch: None,
        warnings: Vec::new(),
        run_id: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpinn_autodiff::Var;
    use qpinn_tensor::Tensor;

    /// A toy task: fit a scalar parameter to minimize (w − 3)².
    struct Quadratic {
        target: f64,
        id: qpinn_nn::ParamId,
    }

    impl PinnTask for Quadratic {
        fn build_loss(&mut self, ctx: &mut GraphCtx<'_>) -> Var {
            let w = ctx.param(self.id);
            let d = ctx.g.add_scalar(w, -self.target);
            ctx.g.mse(d)
        }
        fn eval_error(&self, params: &ParamSet) -> f64 {
            (params.tensors()[0].item() - self.target).abs()
        }
    }

    fn make_task() -> (Quadratic, ParamSet) {
        let mut params = ParamSet::new();
        let id = params.add("w", Tensor::from_vec([1, 1], vec![0.0]));
        (Quadratic { target: 3.0, id }, params)
    }

    #[test]
    fn default_schedule_fires_within_default_epochs() {
        // Regression guard: the default used to pair `epochs: 2000` with a
        // Step schedule of `every: 2000`, so the decay never fired inside a
        // default-length run. The schedule must now decay several times.
        let cfg = TrainConfig::default();
        let lr0 = cfg.schedule.at(0);
        let lr_end = cfg.schedule.at(cfg.epochs - 1);
        assert!(
            lr_end < lr0,
            "default schedule never decays within the default epoch budget"
        );
        // Pin the exact staircase: 0.85^(epoch/500) for the default Step.
        for (epoch, decays) in [(0, 0), (499, 0), (500, 1), (999, 1), (1500, 3), (1999, 3)] {
            let expect = 1e-3 * 0.85f64.powi(decays);
            assert!(
                (cfg.schedule.at(epoch) - expect).abs() < 1e-15,
                "epoch {epoch}: {} != {expect}",
                cfg.schedule.at(epoch)
            );
        }
    }

    #[test]
    fn adam_fits_quadratic() {
        let (mut task, mut params) = make_task();
        let trainer = Trainer::new(TrainConfig {
            epochs: 3000,
            schedule: LrSchedule::Constant { lr: 0.01 },
            log_every: 100,
            eval_every: 500,
            clip: None,
            lbfgs_polish: None,
            checkpoint: None,
            divergence: None,
            progress: None,
            run: None,
        });
        let log = trainer.train(&mut task, &mut params);
        assert!(log.final_error < 1e-3, "err {}", log.final_error);
        assert!(!log.loss.is_empty() && !log.error.is_empty());
        assert!(log.loss.last().unwrap() < &log.loss[0]);
    }

    #[test]
    fn lbfgs_polish_reaches_machine_precision() {
        let (mut task, mut params) = make_task();
        let trainer = Trainer::new(TrainConfig {
            epochs: 200,
            schedule: LrSchedule::Constant { lr: 0.05 },
            log_every: 50,
            eval_every: 0,
            clip: None,
            lbfgs_polish: Some(50),
            checkpoint: None,
            divergence: None,
            progress: None,
            run: None,
        });
        let log = trainer.train(&mut task, &mut params);
        assert!(log.final_error < 1e-8, "err {}", log.final_error);
    }

    #[test]
    fn clipping_bounds_recorded_gradients() {
        let (mut task, mut params) = make_task();
        params.tensors_mut()[0].data_mut()[0] = 1e6; // huge initial gradient
        let trainer = Trainer::new(TrainConfig {
            epochs: 5,
            schedule: LrSchedule::Constant { lr: 0.1 },
            log_every: 1,
            eval_every: 0,
            clip: Some(1.0),
            lbfgs_polish: None,
            checkpoint: None,
            divergence: None,
            progress: None,
            run: None,
        });
        let log = trainer.train(&mut task, &mut params);
        // pre-clip norms are recorded; the *updates* were clipped, so the
        // parameter cannot have moved more than lr per step.
        assert!(log.grad_norm[0] > 1.0);
        assert!((params.tensors()[0].item() - 1e6).abs() < 0.1 * 5.0 + 1e-9);
    }

    #[test]
    fn per_layer_grad_norm_histograms_are_recorded() {
        let (mut task, mut params) = make_task();
        let trainer = Trainer::new(TrainConfig {
            epochs: 4,
            schedule: LrSchedule::Constant { lr: 0.01 },
            log_every: 2,
            eval_every: 0,
            clip: None,
            lbfgs_polish: None,
            checkpoint: None,
            divergence: None,
            progress: None,
            run: None,
        });
        trainer.train(&mut task, &mut params);
        let snap = telemetry::global().snapshot();
        let hist = snap
            .histograms
            .iter()
            .find(|(name, _)| name == "train.grad.norm.w")
            .map(|(_, h)| h)
            .expect("per-layer gradient histogram missing");
        // Epochs 0 and 2 hit the log interval → at least 2 samples (the
        // registry is process-global, so other tests may add more).
        assert!(hist.count >= 2, "count {}", hist.count);
        assert!(hist.max > 0, "gradient norms must be non-zero");
    }
}
