//! Reporting: aligned text tables (the harness prints the same rows the
//! reconstructed paper tables contain) and a minimal JSON writer for
//! machine-readable experiment records.

use std::fmt::Write as _;

/// An aligned, pipe-separated text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    ///
    /// # Panics
    /// Panics on a column-count mismatch.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "column count");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: append a row of displayable items.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        self.row(
            &cells
                .iter()
                .map(|c| format!("{c}"))
                .collect::<Vec<String>>(),
        );
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                let pad = w - c.chars().count();
                out.push_str(c);
                out.push_str(&" ".repeat(pad));
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 3 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

/// Minimal JSON value for experiment records.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// Null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Number (f64; non-finite serializes as null).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object builder from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Parse a JSON document (the inverse of [`Json::to_string`]).
    ///
    /// A strict recursive-descent parser covering the subset this crate
    /// and `qpinn-telemetry` emit: null/true/false, f64 numbers, strings
    /// with `\"` `\\` `\/` `\n` `\t` `\r` `\b` `\f` and `\uXXXX` escapes
    /// (surrogate pairs included), arrays, and objects. Rejects trailing
    /// garbage. Used by tests and CI to validate every emitted line.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            chars: text.chars().collect(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.chars.len() {
            return Err(format!("trailing characters at offset {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup (first match); `None` on non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a finite number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array of numbers.
    pub fn nums(v: &[f64]) -> Json {
        Json::Arr(v.iter().map(|&x| Json::Num(x)).collect())
    }

    /// Serialize.
    pub fn to_string(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    it.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Recursive-descent state for [`Json::parse`].
struct Parser {
    chars: Vec<char>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<char, String> {
        let c = self
            .peek()
            .ok_or_else(|| format!("unexpected end of input at offset {}", self.pos))?;
        self.pos += 1;
        Ok(c)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(' ' | '\t' | '\n' | '\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, want: char) -> Result<(), String> {
        let got = self.bump()?;
        if got != want {
            return Err(format!(
                "expected '{want}' at offset {}, found '{got}'",
                self.pos - 1
            ));
        }
        Ok(())
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        for want in word.chars() {
            self.expect(want)?;
        }
        Ok(value)
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some('n') => self.literal("null", Json::Null),
            Some('t') => self.literal("true", Json::Bool(true)),
            Some('f') => self.literal("false", Json::Bool(false)),
            Some('"') => Ok(Json::Str(self.string()?)),
            Some('[') => self.array(),
            Some('{') => self.object(),
            Some(c) if c == '-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(format!("unexpected '{c}' at offset {}", self.pos)),
            None => Err(format!("unexpected end of input at offset {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some('-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some('.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some('e' | 'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some('+' | '-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number '{text}' at offset {start}: {e}"))
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self.bump()?;
            let d = c
                .to_digit(16)
                .ok_or_else(|| format!("bad hex digit '{c}' at offset {}", self.pos - 1))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect('"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                '"' => return Ok(out),
                '\\' => match self.bump()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    't' => out.push('\t'),
                    'r' => out.push('\r'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let hi = self.hex4()?;
                        let code = if (0xD800..0xDC00).contains(&hi) {
                            // Surrogate pair: a second \uXXXX must follow.
                            self.expect('\\')?;
                            self.expect('u')?;
                            let lo = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&lo) {
                                return Err(format!(
                                    "bad low surrogate {lo:#x} at offset {}",
                                    self.pos
                                ));
                            }
                            0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                        } else {
                            hi
                        };
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("bad code point {code:#x}"))?,
                        );
                    }
                    c => return Err(format!("bad escape '\\{c}' at offset {}", self.pos - 1)),
                },
                c if (c as u32) < 0x20 => {
                    return Err(format!(
                        "unescaped control character at offset {}",
                        self.pos - 1
                    ))
                }
                c => out.push(c),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect('[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                ']' => return Ok(Json::Arr(items)),
                c => return Err(format!("expected ',' or ']' at offset {}, found '{c}'", self.pos - 1)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect('{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some('}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(':')?;
            self.skip_ws();
            let val = self.value()?;
            pairs.push((key, val));
            self.skip_ws();
            match self.bump()? {
                ',' => continue,
                '}' => return Ok(Json::Obj(pairs)),
                c => return Err(format!("expected ',' or '}}' at offset {}, found '{c}'", self.pos - 1)),
            }
        }
    }
}

/// Write an experiment record under `target/experiments/<id>.json`,
/// creating the directory if needed. Returns the path written.
pub fn write_experiment_json(id: &str, value: &Json) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("target").join("experiments");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{id}.json"));
    std::fs::write(&path, value.to_string())?;
    Ok(path)
}

/// Format a mean ± std pair compactly.
pub fn mean_std(mean: f64, std: f64) -> String {
    format!("{mean:.3e} ± {std:.1e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&["a".into(), "1.5".into()]);
        t.row(&["long-name".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // all rows same width
        assert!(lines[2].starts_with("a        "));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    #[should_panic]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn json_round_values() {
        let j = Json::obj(vec![
            ("name", Json::Str("t1".into())),
            ("errors", Json::nums(&[0.5, 1.25])),
            ("ok", Json::Bool(true)),
            ("bad", Json::Num(f64::NAN)),
        ]);
        assert_eq!(
            j.to_string(),
            r#"{"name":"t1","errors":[0.5,1.25],"ok":true,"bad":null}"#
        );
    }

    #[test]
    fn json_escapes_strings() {
        let j = Json::Str("a\"b\\c\nd".into());
        assert_eq!(j.to_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn mean_std_format() {
        assert_eq!(mean_std(0.00123, 0.0004), "1.230e-3 ± 4.0e-4");
    }

    #[test]
    fn table_column_widths_follow_longest_cell() {
        let mut t = TextTable::new(&["k", "very-long-header"]);
        t.row(&["longest-cell-in-column".into(), "v".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        // Header, separator, one row — all the same display width.
        assert_eq!(lines.len(), 3);
        let w = lines[0].chars().count();
        assert_eq!(lines[1].chars().count(), w);
        assert_eq!(lines[2].chars().count(), w);
        // Separator is all dashes.
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    #[should_panic(expected = "column count")]
    fn too_many_cells_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["1".into(), "2".into(), "3".into()]);
    }

    #[test]
    fn parse_round_trips_writer_output() {
        let j = Json::obj(vec![
            ("name", Json::Str("t1 \"quoted\" \\ \n\t\u{1}".into())),
            ("errors", Json::nums(&[0.5, 1.25, -3e-7])),
            ("ok", Json::Bool(true)),
            ("missing", Json::Null),
            (
                "nested",
                Json::obj(vec![("inner", Json::Arr(vec![Json::Num(1.0), Json::Null]))]),
            ),
        ]);
        let text = j.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back, j);
        // And the round-trip is a fixed point.
        assert_eq!(back.to_string(), text);
    }

    #[test]
    fn parse_handles_whitespace_and_unicode_escapes() {
        let j = Json::parse(" { \"a\" : [ 1 , \"\\u00e9\\u0041\" ] , \"b\" : null } ").unwrap();
        assert_eq!(j.get("a").unwrap(), &Json::Arr(vec![
            Json::Num(1.0),
            Json::Str("éA".into()),
        ]));
        assert_eq!(j.get("b"), Some(&Json::Null));
        // Surrogate pair → astral code point.
        assert_eq!(
            Json::parse(r#""😀""#).unwrap(),
            Json::Str("😀".into())
        );
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} extra").is_err());
        assert!(Json::parse("\"unterminated").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("1.2.3").is_err());
        assert!(Json::parse("\"bad \\x escape\"").is_err());
    }

    #[test]
    fn parse_accepts_metrics_snapshot_format() {
        // The exact shape qpinn-telemetry's MetricsSnapshot::to_json
        // emits; CI parses these files with this parser.
        let text = r#"{"schema":"qpinn-metrics-v1","counters":{"train.grad_evals":12},"gauges":{"pool.sets_launched":3.5},"histograms":{"span.epoch_ns":{"count":12,"sum":240,"max":30,"mean":20,"p50":16,"p99":30}}}"#;
        let j = Json::parse(text).unwrap();
        assert_eq!(
            j.get("schema").and_then(Json::as_str),
            Some("qpinn-metrics-v1")
        );
        let hist = j.get("histograms").and_then(|h| h.get("span.epoch_ns")).unwrap();
        assert_eq!(hist.get("count").and_then(Json::as_num), Some(12.0));
    }
}

/// Render a unicode sparkline of a series (8 levels), for quick terminal
/// visualization of convergence trajectories.
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-300);
    values
        .iter()
        .map(|&v| {
            let u = ((v - lo) / span * 7.0).round().clamp(0.0, 7.0) as usize;
            LEVELS[u]
        })
        .collect()
}

/// Render a log-scale sparkline (useful for loss curves spanning decades).
/// Non-positive values clamp to the smallest positive one.
pub fn sparkline_log(values: &[f64]) -> String {
    let floor = values
        .iter()
        .copied()
        .filter(|v| *v > 0.0)
        .fold(f64::INFINITY, f64::min);
    if !floor.is_finite() {
        return sparkline(values);
    }
    let logs: Vec<f64> = values.iter().map(|&v| v.max(floor).ln()).collect();
    sparkline(&logs)
}

#[cfg(test)]
mod spark_tests {
    use super::*;

    #[test]
    fn sparkline_maps_extremes() {
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s, "▁█");
    }

    #[test]
    fn sparkline_is_monotone_for_monotone_input() {
        let s: Vec<char> = sparkline(&[0.0, 0.25, 0.5, 0.75, 1.0]).chars().collect();
        for w in s.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn constant_series_is_flat() {
        let s = sparkline(&[2.0, 2.0, 2.0]);
        assert_eq!(s.chars().collect::<Vec<_>>(), vec!['▁', '▁', '▁']);
    }

    #[test]
    fn log_sparkline_handles_decades() {
        let s = sparkline_log(&[1.0, 0.1, 0.01, 0.001]);
        let cs: Vec<char> = s.chars().collect();
        assert_eq!(cs[0], '█');
        assert_eq!(cs[3], '▁');
        // log scale → equal visual steps per decade
        assert!(cs[1] > cs[2]);
    }

    #[test]
    fn empty_series() {
        assert_eq!(sparkline(&[]), "");
    }
}
