//! Reporting: aligned text tables (the harness prints the same rows the
//! reconstructed paper tables contain) and a minimal JSON writer for
//! machine-readable experiment records.

use std::fmt::Write as _;

/// An aligned, pipe-separated text table.
#[derive(Clone, Debug, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Start a table with the given column names.
    pub fn new(header: &[&str]) -> Self {
        TextTable {
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    ///
    /// # Panics
    /// Panics on a column-count mismatch.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.header.len(), "column count");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: append a row of displayable items.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        self.row(
            &cells
                .iter()
                .map(|c| format!("{c}"))
                .collect::<Vec<String>>(),
        );
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    out.push_str(" | ");
                }
                let pad = w - c.chars().count();
                out.push_str(c);
                out.push_str(&" ".repeat(pad));
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 3 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

/// Minimal JSON value for experiment records.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// Null.
    Null,
    /// Boolean.
    Bool(bool),
    /// Number (f64; non-finite serializes as null).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (ordered).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object builder from pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Array of numbers.
    pub fn nums(v: &[f64]) -> Json {
        Json::Arr(v.iter().map(|&x| Json::Num(x)).collect())
    }

    /// Serialize.
    pub fn to_string(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => {
                            let _ = write!(out, "\\u{:04x}", c as u32);
                        }
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                out.push('[');
                for (i, it) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    it.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    Json::Str(k.clone()).write(out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }
}

/// Write an experiment record under `target/experiments/<id>.json`,
/// creating the directory if needed. Returns the path written.
pub fn write_experiment_json(id: &str, value: &Json) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("target").join("experiments");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{id}.json"));
    std::fs::write(&path, value.to_string())?;
    Ok(path)
}

/// Format a mean ± std pair compactly.
pub fn mean_std(mean: f64, std: f64) -> String {
    format!("{mean:.3e} ± {std:.1e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(&["name", "value"]);
        t.row(&["a".into(), "1.5".into()]);
        t.row(&["long-name".into(), "2".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // all rows same width
        assert!(lines[2].starts_with("a        "));
        assert!(lines[3].starts_with("long-name"));
    }

    #[test]
    #[should_panic]
    fn mismatched_row_panics() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(&["only-one".into()]);
    }

    #[test]
    fn json_round_values() {
        let j = Json::obj(vec![
            ("name", Json::Str("t1".into())),
            ("errors", Json::nums(&[0.5, 1.25])),
            ("ok", Json::Bool(true)),
            ("bad", Json::Num(f64::NAN)),
        ]);
        assert_eq!(
            j.to_string(),
            r#"{"name":"t1","errors":[0.5,1.25],"ok":true,"bad":null}"#
        );
    }

    #[test]
    fn json_escapes_strings() {
        let j = Json::Str("a\"b\\c\nd".into());
        assert_eq!(j.to_string(), r#""a\"b\\c\nd""#);
    }

    #[test]
    fn mean_std_format() {
        assert_eq!(mean_std(0.00123, 0.0004), "1.230e-3 ± 4.0e-4");
    }
}

/// Render a unicode sparkline of a series (8 levels), for quick terminal
/// visualization of convergence trajectories.
pub fn sparkline(values: &[f64]) -> String {
    const LEVELS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() {
        return String::new();
    }
    let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-300);
    values
        .iter()
        .map(|&v| {
            let u = ((v - lo) / span * 7.0).round().clamp(0.0, 7.0) as usize;
            LEVELS[u]
        })
        .collect()
}

/// Render a log-scale sparkline (useful for loss curves spanning decades).
/// Non-positive values clamp to the smallest positive one.
pub fn sparkline_log(values: &[f64]) -> String {
    let floor = values
        .iter()
        .copied()
        .filter(|v| *v > 0.0)
        .fold(f64::INFINITY, f64::min);
    if !floor.is_finite() {
        return sparkline(values);
    }
    let logs: Vec<f64> = values.iter().map(|&v| v.max(floor).ln()).collect();
    sparkline(&logs)
}

#[cfg(test)]
mod spark_tests {
    use super::*;

    #[test]
    fn sparkline_maps_extremes() {
        let s = sparkline(&[0.0, 1.0]);
        assert_eq!(s, "▁█");
    }

    #[test]
    fn sparkline_is_monotone_for_monotone_input() {
        let s: Vec<char> = sparkline(&[0.0, 0.25, 0.5, 0.75, 1.0]).chars().collect();
        for w in s.windows(2) {
            assert!(w[1] >= w[0]);
        }
    }

    #[test]
    fn constant_series_is_flat() {
        let s = sparkline(&[2.0, 2.0, 2.0]);
        assert_eq!(s.chars().collect::<Vec<_>>(), vec!['▁', '▁', '▁']);
    }

    #[test]
    fn log_sparkline_handles_decades() {
        let s = sparkline_log(&[1.0, 0.1, 0.01, 0.001]);
        let cs: Vec<char> = s.chars().collect();
        assert_eq!(cs[0], '█');
        assert_eq!(cs[3], '▁');
        // log scale → equal visual steps per decade
        assert!(cs[1] > cs[2]);
    }

    #[test]
    fn empty_series() {
        assert_eq!(sparkline(&[]), "");
    }
}
