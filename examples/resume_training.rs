//! Checkpointing and crash recovery: train half a run with periodic
//! snapshots, "crash", corrupt the newest snapshot for good measure, and
//! resume — ending at the same place an uninterrupted run would.
//!
//! ```sh
//! cargo run --release --example resume_training
//! ```

use qpinn::core::task::{TdseTask, TdseTaskConfig};
use qpinn::core::trainer::{CheckpointConfig, Trainer};
use qpinn::core::TrainConfig;
use qpinn::nn::ParamSet;
use qpinn::optim::LrSchedule;
use qpinn::persist::SnapshotStore;
use qpinn::problems::TdseProblem;
use rand::{rngs::StdRng, SeedableRng};

const EPOCHS: usize = 300;
const SAVE_EVERY: usize = 50;

fn config(ckpt_dir: &std::path::Path) -> TrainConfig {
    TrainConfig {
        epochs: EPOCHS,
        schedule: LrSchedule::Step {
            lr0: 2e-3,
            factor: 0.85,
            every: 60,
        },
        log_every: 50,
        eval_every: 0,
        clip: Some(100.0),
        lbfgs_polish: None,
        checkpoint: Some(
            CheckpointConfig::new(ckpt_dir)
                .every(SAVE_EVERY)
                .run_id("resume-demo"),
        ),
        divergence: None,
        progress: None,
        run: None,
    }
}

fn fresh_task() -> (TdseTask, ParamSet) {
    let problem = TdseProblem::free_packet();
    let mut cfg = TdseTaskConfig::standard(&problem, 16, 2);
    cfg.n_collocation = 256;
    cfg.reference = (128, 200, 16);
    cfg.eval_grid = (32, 12);
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(42);
    let task = TdseTask::new(problem, &cfg, &mut params, &mut rng);
    (task, params)
}

fn main() {
    let dir = std::env::temp_dir().join("qpinn-resume-demo");
    let _ = std::fs::remove_dir_all(&dir);

    // Phase 1: train, but "crash" halfway by configuring only half the
    // epoch budget. Periodic snapshots land in `dir` as we go.
    println!(
        "phase 1: training epochs 0..{} with snapshots in {}",
        EPOCHS / 2,
        dir.display()
    );
    let (mut task, mut params) = fresh_task();
    let mut half = config(&dir);
    half.epochs = EPOCHS / 2;
    let log1 = Trainer::new(half).train(&mut task, &mut params);
    println!(
        "  stopped at loss {:.4e} after {:.1}s",
        log1.final_loss, log1.wall_s
    );

    let store = SnapshotStore::open(&dir).expect("open store");
    let files = store.list();
    println!("  {} snapshot(s) on disk:", files.len());
    for (epoch, path) in &files {
        println!(
            "    epoch {epoch:>4}  {}",
            path.file_name().unwrap().to_string_lossy()
        );
    }

    // Phase 2: simulate disk trouble — flip a byte in the newest snapshot.
    // The CRC check will reject it and resume falls back to the previous
    // intact one.
    let (_, newest) = files.last().expect("at least one snapshot");
    let mut bytes = std::fs::read(newest).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(newest, &bytes).expect("write corrupted snapshot");
    println!(
        "\nphase 2: flipped one byte in {}",
        newest.file_name().unwrap().to_string_lossy()
    );

    // Phase 3: resume with the full epoch budget. The trainer restores
    // parameters, Adam moments, and the log from the newest *intact*
    // snapshot, then finishes the run as one continuous trajectory.
    println!("\nphase 3: resuming to epoch {EPOCHS}");
    let (mut task2, mut params2) = fresh_task();
    let log = Trainer::new(config(&dir))
        .resume(&dir, &mut task2, &mut params2)
        .expect("resume from intact snapshot");
    for (e, l) in log.epochs.iter().zip(&log.loss) {
        println!("  epoch {e:>4}: loss {l:.4e}");
    }
    println!(
        "\nresumed run: final rel-L2 {:.3e}, accumulated wall time {:.1}s",
        log.final_error, log.wall_s
    );
    println!(
        "log covers epochs {}..={} with no gap across the crash",
        log.epochs.first().unwrap(),
        log.epochs.last().unwrap()
    );

    let _ = std::fs::remove_dir_all(&dir);
}
