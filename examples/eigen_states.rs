//! Quantum bound states by PINN: learn the first three eigenstates of the
//! infinite square well (ψ and E jointly), using deflation to climb the
//! spectrum, and validate against the exact energies `E_n = n²π²/2`.
//!
//! ```sh
//! cargo run --release --example eigen_states
//! ```

use qpinn::core::task::{EigenTask, EigenTaskConfig};
use qpinn::core::trainer::Trainer;
use qpinn::core::TrainConfig;
use qpinn::nn::ParamSet;
use qpinn::optim::LrSchedule;
use qpinn::problems::EigenProblem;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let problem = EigenProblem::infinite_well();
    let exact = problem.exact_energies().expect("well has a closed form");
    println!("problem: {} — exact E_n = n²π²/2", problem.name);

    let train = TrainConfig {
        epochs: 1500,
        schedule: LrSchedule::Step {
            lr0: 5e-3,
            factor: 0.7,
            every: 400,
        },
        log_every: 1500,
        eval_every: 0,
        clip: Some(100.0),
        lbfgs_polish: Some(80),
        checkpoint: None,
        divergence: None,
        progress: None,
        run: None,
    };

    let mut prev_states = Vec::new();
    for k in 0..3 {
        let mut cfg = EigenTaskConfig::standard(0.8 * exact[k]);
        cfg.n_collocation = 128;
        cfg.hidden = vec![24, 24];
        cfg.reference_nx = 601;
        let mut params = ParamSet::new();
        let mut rng = StdRng::seed_from_u64(7 + k as u64);
        let mut task = EigenTask::new(
            problem.clone(),
            &cfg,
            k,
            prev_states.clone(),
            &mut params,
            &mut rng,
        );
        let _ = Trainer::new(train.clone()).train(&mut task, &mut params);
        // Report the variational (Rayleigh quotient) estimate from the
        // learned ψ — second-order accurate in the wavefunction error.
        let e = task.rayleigh_energy(&params);
        println!(
            "state {k}: E_pinn = {e:.5}   E_exact = {:.5}   |ΔE| = {:.2e}   ψ rel-L2 = {:.2e}",
            exact[k],
            (e - exact[k]).abs(),
            task.profile_error(&params)
        );

        // ASCII profile of the learned state
        let xs: Vec<f64> = (0..33).map(|i| i as f64 / 32.0).collect();
        let pts: Vec<Vec<f64>> = xs.iter().map(|&x| vec![x]).collect();
        let psi = task.net().predict(&params, &pts);
        let maxv = (0..33)
            .map(|i| psi.get(&[i, 0]).abs())
            .fold(0.0f64, f64::max)
            .max(1e-12);
        print!("          ");
        for i in 0..33 {
            let v = psi.get(&[i, 0]) / maxv;
            let c = match (v * 4.0).round() as i64 {
                4 => '█',
                3 => '▓',
                2 => '▒',
                1 => '░',
                0 => '·',
                -1 => '░',
                -2 => '▒',
                -3 => '▓',
                _ => '█',
            };
            print!("{c}");
        }
        println!("   (|ψ_{k}| profile over [0, 1])");

        prev_states.push(task.predictions_on_grid(&params));
    }
    println!("\n(deflation: each state is trained orthogonal to the previous ones)");
}
