//! Hybrid quantum-classical PINN: a parametrized quantum circuit as the
//! second-to-last network layer, trained end-to-end (through exact
//! dual-number derivatives of the statevector simulation) to find the
//! harmonic-oscillator ground state by Rayleigh-quotient minimization.
//!
//! ```sh
//! cargo run --release --example hybrid_quantum
//! ```

use qpinn::core::hybrid::{HybridEigenTask, HybridNet};
use qpinn::core::trainer::Trainer;
use qpinn::core::TrainConfig;
use qpinn::nn::ParamSet;
use qpinn::optim::LrSchedule;
use qpinn::problems::EigenProblem;
use qpinn::qcircuit::{Ansatz, InputScaling, QuantumLayer};
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let problem = EigenProblem::harmonic(1.0);
    println!(
        "problem: {} — exact ground-state energy 0.5\n",
        problem.name
    );

    let qlayer = QuantumLayer {
        n_qubits: 3,
        layers: 2,
        ansatz: Ansatz::BasicEntangling,
        scaling: InputScaling::Acos,
        reupload: false,
    };
    println!(
        "quantum layer: {} qubits × {} layers, {} ansatz, {} scaling ({} quantum params)",
        qlayer.n_qubits,
        qlayer.layers,
        qlayer.ansatz.name(),
        qlayer.scaling.name(),
        qlayer.n_params()
    );

    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(3);
    let net = HybridNet::new(&mut params, &mut rng, 12, qlayer, "hybrid");
    println!("total trainable parameters: {}\n", params.n_scalars());

    let mut task = HybridEigenTask::new(problem, net, 48, 401);
    println!(
        "initial Rayleigh-quotient energy: {:.4} (≥ 0.5 by the variational principle)",
        task.energy(&params)
    );

    let log = Trainer::new(TrainConfig {
        epochs: 400,
        schedule: LrSchedule::Step {
            lr0: 5e-3,
            factor: 0.8,
            every: 100,
        },
        log_every: 50,
        eval_every: 0,
        clip: Some(50.0),
        lbfgs_polish: None,
        checkpoint: None,
        divergence: None,
        progress: None,
        run: None,
    })
    .train(&mut task, &mut params);
    for (e, l) in log.epochs.iter().zip(&log.loss) {
        println!("epoch {e:>4}: loss (E + boundary) = {l:.5}");
    }

    let e = task.energy(&params);
    println!(
        "\nlearned ground-state energy: {e:.5} (reference {:.5}, |ΔE| = {:.2e})",
        task.reference_energy(),
        (e - task.reference_energy()).abs()
    );
    println!("wall time: {:.1}s", log.wall_s);

    // Show that the learned ψ looks like a Gaussian.
    println!("\n|ψ(x)| learned by the hybrid model:");
    for i in 0..13 {
        let x = -4.0 + 8.0 * i as f64 / 12.0;
        let v = task.net().predict(&params, &[x])[0].abs();
        println!(
            "x={x:+5.2}  {:>6.3}  {}",
            v,
            "#".repeat((v * 60.0) as usize)
        );
    }
}
