//! Quantum tunnelling study with the reference solvers (no training):
//! propagate a wavepacket into a smooth barrier with the split-step
//! spectral solver and measure transmission/reflection coefficients as a
//! function of the incident momentum — a pure `qpinn-solvers` +
//! `qpinn-problems` workflow.
//!
//! ```sh
//! cargo run --release --example barrier_scattering
//! ```

use qpinn::dual::Complex64;
use qpinn::problems::{GaussianPacket, Potential};
use qpinn::solvers::{split_step_evolve, Grid1d, Nonlinearity};

fn transmission(k0: f64, barrier: &Potential) -> (f64, f64) {
    let grid = Grid1d::periodic(-20.0, 20.0, 512);
    let packet = GaussianPacket {
        x0: -8.0,
        sigma: 1.2,
        k0,
    };
    let psi0: Vec<Complex64> = grid.points().iter().map(|&x| packet.eval(x)).collect();
    // propagate long enough for the packet to fully interact
    let t_end = 16.0 / k0.max(0.5);
    let f = split_step_evolve(
        &grid,
        &|x| barrier.eval(x),
        Nonlinearity::None,
        &psi0,
        t_end,
        2000,
        2000,
    );
    let last = f.slice(f.n_slices() - 1);
    let xs = grid.points();
    let (mut left, mut right) = (0.0, 0.0);
    for (x, c) in xs.iter().zip(last) {
        if *x < 0.0 {
            left += c.norm_sqr();
        } else {
            right += c.norm_sqr();
        }
    }
    let total = left + right;
    (right / total, left / total)
}

fn main() {
    let barrier = Potential::Barrier {
        height: 2.0,
        width: 0.8,
    };
    println!("smooth Gaussian barrier: V(x) = 2.0·exp(−x²/(2·0.8²))");
    println!("incident Gaussian packets with momentum k₀; E ≈ k₀²/2\n");
    println!("{:>6} {:>10} {:>14} {:>13}", "k₀", "E/V₀", "transmission", "reflection");
    println!("{}", "-".repeat(48));
    for &k0 in &[1.0, 1.5, 2.0, 2.5, 3.0, 4.0] {
        let (t, r) = transmission(k0, &barrier);
        let e_over_v = 0.5 * k0 * k0 / 2.0;
        println!("{k0:>6.1} {e_over_v:>10.2} {t:>14.4} {r:>13.4}");
    }
    println!(
        "\nExpected shape: strong reflection for E < V₀ with a tunnelling tail,\n\
         transmission → 1 as E grows past the barrier height."
    );
}
