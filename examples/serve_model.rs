//! The full serving loop against a live `qpinn-serve` instance: submit
//! a train job over HTTP, poll its progress, list the registry, and run
//! a batched evaluation — the same sequence the README's curl
//! walkthrough shows, as a self-contained program.
//!
//! ```sh
//! cargo run --release --example serve_model
//! # in another terminal, while it runs (using the printed port):
//! #   curl http://127.0.0.1:<port>/v1/models
//! ```
//!
//! Binds port 0 (a free port) and prints the chosen port so it can run
//! unattended alongside anything else.

use qpinn::core::report::Json;
use qpinn::serve::{ServeConfig, ServeServer};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

fn request(addr: SocketAddr, method: &str, path: &str, body: Option<&str>) -> String {
    let mut s = TcpStream::connect(addr).unwrap();
    match body {
        Some(b) => write!(
            s,
            "{method} {path} HTTP/1.1\r\nHost: example\r\nContent-Type: application/json\r\n\
             Content-Length: {}\r\n\r\n{b}",
            b.len()
        )
        .unwrap(),
        None => write!(s, "{method} {path} HTTP/1.1\r\nHost: example\r\n\r\n").unwrap(),
    }
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    buf.split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or(buf)
}

fn main() {
    // 1. Start the server over a throwaway models directory. Production
    //    setups point this at a persistent models/ tree.
    let models = std::env::temp_dir().join(format!("qpinn-serve-example-{}", std::process::id()));
    let server = ServeServer::start("127.0.0.1:0", ServeConfig::new(&models)).unwrap();
    let addr = server.local_addr();
    println!("bound port {} (picked by the OS via port 0)", addr.port());
    println!("inference server: http://{addr}\n");

    // 2. Submit a small train job.
    let body = r#"{"model_id":"demo","problem":"harmonic","width":12,"depth":2,
                   "epochs":40,"seed":7,"n_collocation":128}"#;
    let accepted = request(addr, "POST", "/v1/train", Some(body));
    println!("POST /v1/train → {accepted}");
    let job_id = Json::parse(&accepted)
        .ok()
        .and_then(|j| j.get("job_id").and_then(|v| v.as_str()).map(str::to_string))
        .expect("job id in response");

    // 3. Poll progress until the job publishes a model version.
    loop {
        let doc = request(addr, "GET", &format!("/v1/jobs/{job_id}/progress"), None);
        let parsed = Json::parse(&doc).unwrap();
        let state = parsed.get("state").unwrap().as_str().unwrap().to_string();
        println!("GET /v1/jobs/{job_id}/progress → {doc}");
        match state.as_str() {
            "completed" => break,
            "failed" => panic!("train job failed: {doc}"),
            _ => std::thread::sleep(std::time::Duration::from_millis(300)),
        }
    }

    // 4. The registry now lists demo@1.
    println!("\nGET /v1/models → {}", request(addr, "GET", "/v1/models", None));

    // 5. Batched evaluation: one request, many points. Concurrent
    //    requests for the same model would coalesce into shared forward
    //    passes — check the serve_batch_* series on /metrics.
    let eval = r#"{"model":"demo@latest","points":[[-2.0,0.1],[0.0,0.1],[2.0,0.1],[0.0,0.4]]}"#;
    println!("\nPOST /v1/eval → {}", request(addr, "POST", "/v1/eval", Some(eval)));

    let metrics = request(addr, "GET", "/metrics", None);
    println!("\nserve.* metrics after one round:");
    for line in metrics
        .lines()
        .filter(|l| l.starts_with("qpinn_serve_") && !l.starts_with('#'))
        .take(8)
    {
        println!("  {line}");
    }

    server.stop();
    let _ = std::fs::remove_dir_all(&models);
}
