//! Two-dimensional Schrödinger PINN: train on the 2D free-packet problem
//! and compare a density slice against the 2D spectral reference — the
//! multi-dimensional extension in miniature.
//!
//! ```sh
//! cargo run --release --example tdse_2d
//! ```

use qpinn::core::report::sparkline_log;
use qpinn::core::task::{Tdse2dTask, Tdse2dTaskConfig};
use qpinn::core::trainer::Trainer;
use qpinn::core::TrainConfig;
use qpinn::nn::ParamSet;
use qpinn::optim::LrSchedule;
use qpinn::problems::Tdse2dProblem;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let problem = Tdse2dProblem::free_packet_2d();
    println!(
        "problem: {} on [{},{}]² × [0, {}]",
        problem.name, problem.x.0, problem.x.1, problem.t_end
    );

    let mut cfg = Tdse2dTaskConfig::standard(20, 3);
    cfg.rff_features = 20;
    cfg.n_collocation = 512;
    cfg.n_ic_side = 12;
    cfg.conservation_grid = (3, 10);
    cfg.reference = (64, 150, 8);
    cfg.eval_grid = (16, 5);
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(5);
    let mut task = Tdse2dTask::new(problem.clone(), &cfg, &mut params, &mut rng);
    println!("trainable parameters: {}", params.n_scalars());

    let log = Trainer::new(TrainConfig {
        epochs: 400,
        schedule: LrSchedule::Step {
            lr0: 3e-3,
            factor: 0.85,
            every: 80,
        },
        log_every: 50,
        eval_every: 0,
        clip: Some(100.0),
        lbfgs_polish: Some(60),
        checkpoint: None,
        divergence: None,
        progress: None,
        run: None,
    })
    .train(&mut task, &mut params);
    println!("loss: {}", sparkline_log(&log.loss));
    println!(
        "rel-L2 vs 2D spectral reference: {:.3e} ({:.1}s)\n",
        log.final_error, log.wall_s
    );

    // |ψ|² heat strip along y = 0 at t = 0 and t = t_end
    for &t in &[0.0, problem.t_end] {
        print!("|ψ(x, 0, {t:.1})|²  ");
        for i in 0..33 {
            let x = problem.x.0 + (problem.x.1 - problem.x.0) * i as f64 / 32.0;
            let pred = task.net().predict(&params, &[vec![x, 0.0, t]]);
            let d = pred.get(&[0, 0]).powi(2) + pred.get(&[0, 1]).powi(2);
            let c = match (d * 20.0) as i64 {
                0 => '·',
                1 => '░',
                2 => '▒',
                3..=4 => '▓',
                _ => '█',
            };
            print!("{c}");
        }
        println!();
    }
    println!("(the packet spreads isotropically; the reference shows the same profile)");
}
