//! Nonlinear Schrödinger bright soliton: train a PINN on
//! `i h_t + ½ h_xx + |h|² h = 0` with `h(0, x) = a sech(a x)` and compare
//! against the *exact* soliton `a sech(a x)·e^{i a² t/2}` — a problem with
//! a genuine nonlinearity and a closed-form oracle.
//!
//! ```sh
//! cargo run --release --example nls_soliton
//! ```

use qpinn::core::task::{NlsTask, NlsTaskConfig};
use qpinn::core::trainer::Trainer;
use qpinn::core::TrainConfig;
use qpinn::nn::ParamSet;
use qpinn::optim::LrSchedule;
use qpinn::problems::NlsProblem;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    let a = 1.0;
    let problem = NlsProblem::bright_soliton(a);
    println!(
        "problem: {} on [{}, {}] × [0, {}]",
        problem.name, problem.x0, problem.x1, problem.t_end
    );

    let mut cfg = NlsTaskConfig::standard(&problem, 24, 3);
    cfg.n_collocation = 512;
    cfg.reference = (256, 800, 32);
    cfg.eval_grid = (64, 24);

    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(7);
    let mut task = NlsTask::new(problem.clone(), &cfg, &mut params, &mut rng);

    let log = Trainer::new(TrainConfig {
        epochs: 500,
        schedule: LrSchedule::Step {
            lr0: 2e-3,
            factor: 0.85,
            every: 100,
        },
        log_every: 100,
        eval_every: 0,
        clip: Some(100.0),
        lbfgs_polish: None,
        checkpoint: None,
        divergence: None,
        progress: None,
        run: None,
    })
    .train(&mut task, &mut params);
    println!(
        "trained {} params → rel-L2 vs spectral reference: {:.3e} ({:.1}s)",
        params.n_scalars(),
        log.final_error,
        log.wall_s
    );

    // Compare with the closed-form soliton at a few space-time points.
    println!("\npointwise check vs EXACT soliton h = a·sech(ax)·e^(i a² t/2):");
    let mut worst = 0.0f64;
    for &t in &[0.25, 0.5, 1.0] {
        for &x in &[-2.0, -0.5, 0.0, 1.0, 3.0] {
            let exact = problem.analytic(x, t).expect("soliton has a closed form");
            let pred = task.net().predict(&params, &[vec![x, t]]);
            let (pu, pv) = (pred.get(&[0, 0]), pred.get(&[0, 1]));
            let err = ((pu - exact.re).powi(2) + (pv - exact.im).powi(2)).sqrt();
            worst = worst.max(err);
            println!(
                "  (x={x:+.1}, t={t:.2})  pinn=({pu:+.4}, {pv:+.4})  exact=({:+.4}, {:+.4})  |Δ|={err:.2e}",
                exact.re, exact.im
            );
        }
    }
    println!("\nworst pointwise deviation: {worst:.3e}");
    println!("(longer training — see the T1 harness — tightens this substantially)");
}
