//! Live observation of a training run: start the embedded metrics
//! endpoint, train with a progress hook, and scrape the four routes the
//! way Prometheus (or plain `curl`) would.
//!
//! ```sh
//! cargo run --release --example serve_metrics
//! # in another terminal, while it trains:
//! #   curl http://127.0.0.1:9095/progress
//! #   curl http://127.0.0.1:9095/metrics
//! ```
//!
//! This example binds port 0 (a free port) so it can run unattended and
//! scrapes itself at the end to show the responses.

use qpinn::core::task::{TdseTask, TdseTaskConfig};
use qpinn::core::trainer::Trainer;
use qpinn::core::TrainConfig;
use qpinn::nn::ParamSet;
use qpinn::obs::MetricsServer;
use qpinn::optim::LrSchedule;
use qpinn::problems::TdseProblem;
use rand::{rngs::StdRng, SeedableRng};
use std::io::{Read, Write};

fn get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    write!(s, "GET {path} HTTP/1.1\r\nHost: example\r\n\r\n").unwrap();
    let mut buf = String::new();
    s.read_to_string(&mut buf).unwrap();
    buf.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or(buf)
}

fn main() {
    // 1. Start the endpoint. Use "127.0.0.1:9095" for a fixed port; this
    //    also installs a telemetry sink so `train_progress` marks feed
    //    /progress with zero trainer wiring.
    let server = MetricsServer::start("127.0.0.1:0").unwrap();
    let addr = server.local_addr();
    println!("bound port {} (picked by the OS via port 0)", addr.port());
    println!("metrics endpoint: http://{addr}/metrics");
    println!("progress:         http://{addr}/progress\n");

    // 2. A small training run. The explicit progress hook works even
    //    without any telemetry sinks and prints each update the server
    //    will also serve.
    let problem = TdseProblem::free_packet();
    let mut cfg = TdseTaskConfig::standard(&problem, 16, 2);
    cfg.n_collocation = 256;
    cfg.reference = (128, 200, 16);
    cfg.eval_grid = (32, 12);
    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(42);
    let mut task = TdseTask::new(problem, &cfg, &mut params, &mut rng);

    let trainer = Trainer::new(TrainConfig {
        epochs: 200,
        schedule: LrSchedule::Constant { lr: 2e-3 },
        log_every: 25,
        eval_every: 0,
        clip: Some(100.0),
        lbfgs_polish: None,
        checkpoint: None,
        divergence: None,
        progress: Some(server.progress_hook()),
        run: None,
    });
    let log = trainer.train(&mut task, &mut params);
    println!("trained to loss {:.3e} in {:.1}s\n", log.final_loss, log.wall_s);

    // 3. Scrape ourselves, as a monitoring system would.
    println!("GET /healthz  → {}", get(addr, "/healthz"));
    println!("GET /progress → {}", get(addr, "/progress"));
    let metrics = get(addr, "/metrics");
    println!("GET /metrics  → {} lines, e.g.:", metrics.lines().count());
    for line in metrics.lines().filter(|l| l.contains("train_progress_")).take(4) {
        println!("  {line}");
    }
    server.stop();
}
