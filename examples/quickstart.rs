//! Quickstart: train a physics-informed network on the free-particle
//! Schrödinger equation and compare it with the spectral reference.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use qpinn::core::task::{TdseTask, TdseTaskConfig};
use qpinn::core::trainer::Trainer;
use qpinn::core::TrainConfig;
use qpinn::nn::ParamSet;
use qpinn::optim::LrSchedule;
use qpinn::problems::TdseProblem;
use rand::{rngs::StdRng, SeedableRng};

fn main() {
    // 1. Pick a benchmark problem: a Gaussian packet spreading in a
    //    periodic box under i ψ_t = −½ ψ_xx.
    let problem = TdseProblem::free_packet();
    println!(
        "problem: {} on [{}, {}] × [0, {}]",
        problem.name, problem.x0, problem.x1, problem.t_end
    );

    // 2. Configure the task: network architecture, collocation budget,
    //    loss weights (conservation + causal weighting on by default).
    let mut cfg = TdseTaskConfig::standard(&problem, 24, 3);
    cfg.n_collocation = 512;
    cfg.reference = (256, 400, 32);
    cfg.eval_grid = (64, 24);

    let mut params = ParamSet::new();
    let mut rng = StdRng::seed_from_u64(42);
    let mut task = TdseTask::new(problem.clone(), &cfg, &mut params, &mut rng);
    println!("trainable parameters: {}", params.n_scalars());

    // 3. Train with Adam (step-decayed learning rate).
    let trainer = Trainer::new(TrainConfig {
        epochs: 400,
        schedule: LrSchedule::Step {
            lr0: 2e-3,
            factor: 0.85,
            every: 80,
        },
        log_every: 50,
        eval_every: 100,
        clip: Some(100.0),
        lbfgs_polish: None,
        checkpoint: None,
        divergence: None,
        progress: None,
        run: None,
    });
    let log = trainer.train(&mut task, &mut params);
    for (e, l) in log.epochs.iter().zip(&log.loss) {
        println!("epoch {e:>5}: loss {l:.4e}");
    }
    println!(
        "loss trajectory (log scale): {}",
        qpinn::core::report::sparkline_log(&log.loss)
    );

    // 4. Score against the high-fidelity split-step reference.
    println!(
        "\nfinal relative L2 error vs reference: {:.3e}  ({:.1}s)",
        log.final_error, log.wall_s
    );

    // 5. Inspect the solution: |ψ| along x at the final time.
    let t = problem.t_end;
    println!("\n|ψ(x, t={t})|  (PINN vs reference)");
    for i in 0..13 {
        let x = problem.x0 + problem.length() * i as f64 / 12.0;
        let pred = task.net().predict(&params, &[vec![x, t]]);
        let pm = (pred.get(&[0, 0]).powi(2) + pred.get(&[0, 1]).powi(2)).sqrt();
        let rm = task.reference().sample(x, t).abs();
        let bar = "#".repeat((pm * 40.0) as usize);
        println!("x={x:+5.2}  pinn={pm:.4}  ref={rm:.4}  {bar}");
    }
}
